//! The over-the-air channel: scene composition of node backscatter, static
//! clutter, the node's structural mirror reflection, and AP
//! self-interference.
//!
//! This module replaces the paper's physical indoor environment ("tables,
//! chairs, and shelves", §9). It is deliberately a *discrete-ray* model:
//! every path contributes a delayed, phase-rotated, amplitude-scaled copy of
//! the transmitted complex envelope. That is exactly the structure the
//! paper's algorithms are designed against — background subtraction removes
//! the static rays, the FMCW dechirp maps delays to beat frequencies, and
//! the two RX antennas see the geometric phase difference used for AoA.
//!
//! Noise is *not* added here; receivers (AP front-end, node envelope
//! detectors) inject their own thermal noise so that noise bandwidths match
//! each receiver's detection filter.

use crate::antenna::{Antenna, Horn};
use crate::fsa::{DualPortFsa, Port};
use crate::geometry::{Point, Pose, SPEED_OF_LIGHT};
use crate::propagation::{backscatter_rx_power, fspl, one_way_rx_power, radar_rx_power};
use crate::workspace::{
    fsa_fingerprint, pose_bits, wave_fingerprint, with_channel_workspace, ChannelWorkspace, Fnv,
    PortKey, RayKey, StaticKey,
};
use milback_dsp::chirp::ChirpConfig;
use milback_dsp::noise::db_to_ratio;
use milback_dsp::num::{Cpx, ZERO};
use milback_dsp::signal::Signal;
use std::f64::consts::PI;

/// Instantaneous-frequency profile of a transmitted waveform. The FSA's
/// beam direction depends on instantaneous frequency, so the channel must
/// know *what* RF frequency is being emitted at every instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FreqProfile {
    /// A fixed-frequency tone at the given RF frequency (Hz).
    Constant(f64),
    /// A sawtooth FMCW chirp.
    Sawtooth(ChirpConfig),
    /// A triangular FMCW chirp.
    Triangular(ChirpConfig),
}

impl FreqProfile {
    /// Instantaneous RF frequency at waveform-local time `t` (seconds).
    pub fn freq_at(&self, t: f64) -> f64 {
        match self {
            FreqProfile::Constant(f) => *f,
            FreqProfile::Sawtooth(cfg) => cfg.sawtooth_freq_at(t),
            FreqProfile::Triangular(cfg) => cfg.triangular_freq_at(t),
        }
    }
}

/// A transmitted waveform plus its instantaneous-frequency profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TxComponent {
    /// The complex-baseband waveform (its `fc` is the reference carrier).
    pub signal: Signal,
    /// Frequency profile matching the waveform.
    pub profile: FreqProfile,
}

impl TxComponent {
    /// A constant tone component at RF frequency `f_rf`.
    pub fn tone(signal: Signal, f_rf: f64) -> Self {
        Self {
            signal,
            profile: FreqProfile::Constant(f_rf),
        }
    }

    /// RF frequency range swept by this component.
    pub fn freq_range(&self) -> (f64, f64) {
        match self.profile {
            FreqProfile::Constant(f) => (f, f),
            FreqProfile::Sawtooth(c) | FreqProfile::Triangular(c) => (c.f_start, c.f_stop),
        }
    }
}

/// Folds a frequency profile into a fingerprint, domain-separated by a
/// discriminant word so e.g. `Constant(f)` and a degenerate chirp at
/// `f` cannot collide.
pub(crate) fn fold_profile(h: &mut Fnv, p: &FreqProfile) {
    match p {
        FreqProfile::Constant(f) => {
            h.word(1);
            h.f64(*f);
        }
        FreqProfile::Sawtooth(c) | FreqProfile::Triangular(c) => {
            h.word(if matches!(p, FreqProfile::Sawtooth(_)) {
                2
            } else {
                3
            });
            h.f64(c.f_start);
            h.f64(c.f_stop);
            h.f64(c.duration);
            h.f64(c.fs);
            h.f64(c.amplitude);
        }
    }
}

/// Precomputed frequency→value lookup table over a component's swept
/// band. FSA gains are evaluated per output sample; evaluating the
/// 12-element array factor millions of times dominates the simulation, so
/// the channel tabulates each needed gain curve once per render and
/// linearly interpolates.
struct FreqLut {
    f_lo: f64,
    step: f64,
    values: Vec<f64>,
}

impl FreqLut {
    const POINTS: usize = 2048;

    fn build(f_lo: f64, f_hi: f64, mut eval: impl FnMut(f64) -> f64) -> Self {
        if f_hi <= f_lo {
            return Self {
                f_lo,
                step: 1.0,
                values: vec![eval(f_lo)],
            };
        }
        let step = (f_hi - f_lo) / (Self::POINTS - 1) as f64;
        let values = (0..Self::POINTS)
            .map(|i| eval(f_lo + i as f64 * step))
            .collect();
        Self { f_lo, step, values }
    }

    #[inline]
    fn get(&self, f: f64) -> f64 {
        if self.values.len() == 1 {
            return self.values[0];
        }
        let x = ((f - self.f_lo) / self.step).clamp(0.0, (self.values.len() - 1) as f64);
        let i = x.floor() as usize;
        if i + 1 >= self.values.len() {
            return self.values[self.values.len() - 1];
        }
        let frac = x - i as f64;
        self.values[i] * (1.0 - frac) + self.values[i + 1] * frac
    }
}

/// A static clutter reflector (wall, desk, shelf…).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reflector {
    /// Position in the plane.
    pub position: Point,
    /// Radar cross-section in m².
    pub rcs: f64,
}

/// The node's structural (ground-plane) mirror reflection — the
/// interference source behind the orientation-error bump of Figure 13b.
///
/// The mirror return is strongest near specular incidence and, crucially,
/// couples weakly to the switch state, so background subtraction cannot
/// remove it completely (paper §9.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorReflection {
    /// Peak RCS at the specular angle, m².
    pub peak_rcs: f64,
    /// Incidence angle of the specular peak, radians.
    pub center: f64,
    /// Gaussian angular width of the specular lobe, radians.
    pub width: f64,
    /// Fraction of the mirror amplitude modulated by the node's switching
    /// (0 = perfectly static → fully removed by subtraction).
    pub switch_coupling: f64,
    /// Extra one-way depth of the effective specular point behind the FSA
    /// aperture, meters (millimetres). Re-mounting or rotating the node
    /// changes this, which randomizes the mirror's carrier phase relative
    /// to the antenna-mode return — the reason the paper's Fig. 13b error
    /// bump has high variance rather than a fixed bias.
    pub depth_offset: f64,
}

impl MirrorReflection {
    /// The MilBack prototype's mirror reflection, calibrated to reproduce
    /// the Fig. 13b error bump between −6° and −2°.
    pub fn milback() -> Self {
        Self {
            peak_rcs: 6.5e-3,
            center: (-4f64).to_radians(),
            width: 1.8f64.to_radians(),
            switch_coupling: 0.23,
            depth_offset: 0.0,
        }
    }

    /// Effective RCS at incidence `inc` radians.
    pub fn rcs_at(&self, inc: f64) -> f64 {
        let x = (inc - self.center) / self.width;
        self.peak_rcs * (-x * x).exp()
    }
}

/// Reflection coefficients of the node's two FSA ports at node-local time
/// `t`: `[Γ_A, Γ_B]` as complex voltage ratios.
pub type GammaSchedule<'a> = dyn Fn(f64) -> [Cpx; 2] + 'a;

/// The node as seen by the channel: where it is, how it is oriented, which
/// FSA it carries, and how its port reflection coefficients evolve in time.
pub struct NodeInterface<'a> {
    /// Node pose.
    pub pose: Pose,
    /// The node's dual-port FSA.
    pub fsa: &'a DualPortFsa,
    /// Port reflection coefficients over time.
    pub gamma: &'a GammaSchedule<'a>,
}

/// Hoisted per-ray synthesis tables for one (scene, waveform, node
/// geometry, RX antenna) tuple: everything in `add_node_backscatter`'s
/// inner loop that does not depend on the reflection-coefficient
/// schedule. Built once, then replayed per chirp with only the gamma
/// evaluation and three multiply-adds per sample.
#[derive(Debug, Clone)]
pub struct RayTables {
    /// Envelope delayed by the round-trip time.
    pub(crate) delayed: Vec<Cpx>,
    /// Per-sample port-A/port-B LUT amplitudes at the instantaneous
    /// emitted frequency.
    pub(crate) amp: [Vec<f64>; 2],
    /// Per-sample mirror LUT amplitude (empty when the scene has no
    /// mirror model).
    pub(crate) amp_mirror: Vec<f64>,
    /// Round-trip carrier phasor `exp(-j2π·fc·τ_rt)`.
    pub(crate) rt_phase: Cpx,
    /// Mirror `(switch_coupling, depth phasor)` when enabled.
    pub(crate) mirror: Option<(f64, Cpx)>,
}

/// Hoisted tables for [`Scene::to_node_port`]: the per-sample one-way
/// LUT amplitude, the carrier phasor and the propagation delay.
#[derive(Debug, Clone)]
pub struct PortTables {
    pub(crate) amp: Vec<f64>,
    pub(crate) carrier_phase: Cpx,
    pub(crate) tau: f64,
}

/// The complete propagation scene.
#[derive(Debug, Clone)]
pub struct Scene {
    /// AP transmit antenna position.
    pub tx_pos: Point,
    /// AP receive antenna positions (two, for phase-difference AoA).
    pub rx_pos: [Point; 2],
    /// Transmit antenna pattern.
    pub tx_antenna: Horn,
    /// Receive antenna pattern (both RX antennas identical).
    pub rx_antenna: Horn,
    /// Azimuth the AP's beams are steered toward, radians.
    pub steer: f64,
    /// Static clutter reflectors.
    pub clutter: Vec<Reflector>,
    /// TX→RX leakage (self-interference) in dB (negative). `None` disables.
    pub self_interference_db: Option<f64>,
    /// The node's structural mirror reflection. `None` disables.
    pub mirror: Option<MirrorReflection>,
}

impl Scene {
    /// An empty free-space scene with the MilBack AP antenna arrangement:
    /// TX at the origin, two RX antennas spaced λ/2 at 28 GHz on the y
    /// axis, beams steered along +x.
    pub fn free_space() -> Self {
        let half_lambda = SPEED_OF_LIGHT / 28e9 / 2.0;
        Self {
            tx_pos: Point::origin(),
            rx_pos: [
                Point::new(0.0, half_lambda / 2.0),
                Point::new(0.0, -half_lambda / 2.0),
            ],
            tx_antenna: Horn::milback_ap(),
            rx_antenna: Horn::milback_ap(),
            steer: 0.0,
            clutter: Vec::new(),
            self_interference_db: None,
            mirror: None,
        }
    }

    /// The paper's indoor evaluation scene: a handful of strong static
    /// reflectors (walls, desk, shelf), −45 dB self-interference and the
    /// node mirror reflection enabled.
    pub fn milback_indoor() -> Self {
        let mut s = Self::free_space();
        s.clutter = vec![
            Reflector {
                position: Point::new(6.0, 2.0),
                rcs: 0.8,
            }, // side wall
            Reflector {
                position: Point::new(9.0, -1.5),
                rcs: 1.5,
            }, // back wall
            Reflector {
                position: Point::new(2.5, -1.0),
                rcs: 0.15,
            }, // desk
            Reflector {
                position: Point::new(4.0, 1.8),
                rcs: 0.25,
            }, // shelf
        ];
        s.self_interference_db = Some(-45.0);
        s.mirror = Some(MirrorReflection::milback());
        s
    }

    /// Steers the AP's TX/RX beams toward a target point.
    ///
    /// Changes [`Scene::static_fingerprint`], so every cached channel
    /// response is invalidated on the next render.
    pub fn steer_towards(&mut self, target: &Point) {
        self.steer = self.tx_pos.bearing_to(target);
    }

    /// Content-generation fingerprint over every field that shapes the
    /// synthesized channel: antenna geometry and patterns, steering,
    /// clutter, self-interference and the mirror model. The
    /// [`crate::workspace::ChannelWorkspace`] caches are keyed on this
    /// value, so *any* scene mutation — method or direct field edit —
    /// invalidates them on the next render (DESIGN.md §13).
    pub fn static_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.f64(self.tx_pos.x);
        h.f64(self.tx_pos.y);
        for p in &self.rx_pos {
            h.f64(p.x);
            h.f64(p.y);
        }
        for horn in [&self.tx_antenna, &self.rx_antenna] {
            h.f64(horn.peak_dbi);
            h.f64(horn.hpbw);
            h.f64(horn.sidelobe_db);
        }
        h.f64(self.steer);
        h.word(self.clutter.len() as u64);
        for r in &self.clutter {
            h.f64(r.position.x);
            h.f64(r.position.y);
            h.f64(r.rcs);
        }
        match self.self_interference_db {
            None => h.word(0),
            Some(db) => {
                h.word(1);
                h.f64(db);
            }
        }
        match &self.mirror {
            None => h.word(0),
            Some(m) => {
                h.word(1);
                h.f64(m.peak_rcs);
                h.f64(m.center);
                h.f64(m.width);
                h.f64(m.switch_coupling);
                h.f64(m.depth_offset);
            }
        }
        h.finish()
    }

    /// AP TX antenna gain toward `target` given current steering.
    fn tx_gain_towards(&self, target: &Point, f: f64) -> f64 {
        let bearing = self.tx_pos.bearing_to(target);
        self.tx_antenna.gain(bearing - self.steer, f)
    }

    /// AP RX antenna gain from `target` given current steering.
    fn rx_gain_from(&self, rx_idx: usize, target: &Point, f: f64) -> f64 {
        let bearing = self.rx_pos[rx_idx].bearing_to(target);
        self.rx_antenna.gain(bearing - self.steer, f)
    }

    // -----------------------------------------------------------------
    // Wideband signal-level operations
    // -----------------------------------------------------------------

    /// The signal arriving *inside* the node at FSA port `port` (one-way,
    /// downlink direction), including the frequency-dependent FSA beam
    /// gain. Noiseless; the envelope detector adds its own noise.
    ///
    /// Routes through the thread-local [`ChannelWorkspace`] so the
    /// frequency LUT and per-sample amplitude table are reused across
    /// symbols of a downlink burst; see [`Scene::to_node_port_with`].
    pub fn to_node_port(
        &self,
        comp: &TxComponent,
        pose: &Pose,
        fsa: &DualPortFsa,
        port: Port,
    ) -> Signal {
        let wave_fp = wave_fingerprint(comp);
        with_channel_workspace(|ws| self.to_node_port_with(ws, comp, wave_fp, pose, fsa, port))
    }

    /// [`Scene::to_node_port`] against a caller-owned workspace with a
    /// precomputed [`wave_fingerprint`]. Bitwise identical to the
    /// historical LUT-per-call implementation.
    pub fn to_node_port_with(
        &self,
        ws: &mut ChannelWorkspace,
        comp: &TxComponent,
        wave_fp: u64,
        pose: &Pose,
        fsa: &DualPortFsa,
        port: Port,
    ) -> Signal {
        let mut out = Signal::new(comp.signal.fs, comp.signal.fc, Vec::new());
        self.to_node_port_into(ws, comp, wave_fp, pose, fsa, port, &mut out);
        out
    }

    /// Allocation-free [`Scene::to_node_port_with`]: overwrites `out`
    /// (rate, carrier and samples), reusing its capacity. Bitwise
    /// identical to the allocating form.
    #[allow(clippy::too_many_arguments)] // mirrors to_node_port_with + out
    pub fn to_node_port_into(
        &self,
        ws: &mut ChannelWorkspace,
        comp: &TxComponent,
        wave_fp: u64,
        pose: &Pose,
        fsa: &DualPortFsa,
        port: Port,
        out: &mut Signal,
    ) {
        let key = PortKey {
            scene: self.static_fingerprint(),
            wave: wave_fp,
            pose: pose_bits(pose),
            fsa: fsa_fingerprint(fsa),
            port,
        };
        let tables = ws.port_tables(key, || self.build_port_tables(comp, pose, fsa, port));
        out.fs = comp.signal.fs;
        out.fc = comp.signal.fc;
        comp.signal.delayed_into(tables.tau, &mut out.samples);
        for (c, amp) in out.samples.iter_mut().zip(&tables.amp) {
            *c *= tables.carrier_phase * *amp;
        }
    }

    /// Builds the hoisted [`PortTables`] for one downlink ray: the
    /// amplitude LUT evaluated at every sample's instantaneous emitted
    /// frequency, plus the carrier phasor and delay.
    fn build_port_tables(
        &self,
        comp: &TxComponent,
        pose: &Pose,
        fsa: &DualPortFsa,
        port: Port,
    ) -> PortTables {
        let d = self.tx_pos.distance_to(&pose.position);
        let tau = d / SPEED_OF_LIGHT;
        let inc = pose.incidence_from(&self.tx_pos);
        let fc = comp.signal.fc;
        let fs = comp.signal.fs;
        let g_tx = self.tx_gain_towards(&pose.position, fc);
        let carrier_phase = Cpx::cis(-2.0 * PI * fc * tau);

        let (f_lo, f_hi) = comp.freq_range();
        let amp_lut = FreqLut::build(f_lo, f_hi, |f| {
            one_way_rx_power(1.0, g_tx, fsa.gain(port, inc, f), d, f).sqrt()
        });
        let amp = (0..comp.signal.len())
            .map(|i| {
                let t_emit = i as f64 / fs - tau;
                let f_inst = comp.profile.freq_at(t_emit.max(0.0));
                amp_lut.get(f_inst)
            })
            .collect();
        PortTables {
            amp,
            carrier_phase,
            tau,
        }
    }

    /// Monostatic capture at RX antenna `rx_idx`: node backscatter through
    /// both FSA ports (weighted by the time-varying reflection
    /// coefficients), static clutter, the node mirror reflection, and TX
    /// self-interference. Noiseless.
    pub fn monostatic_rx(
        &self,
        comp: &TxComponent,
        node: &NodeInterface<'_>,
        rx_idx: usize,
    ) -> Signal {
        self.monostatic_rx_multi(comp, std::slice::from_ref(node), rx_idx)
    }

    /// Monostatic capture with **multiple** backscatter nodes in the scene
    /// (SDM operation, paper §7): every node's modulated return is summed,
    /// plus the shared static paths. The channel is linear, so this is
    /// exact.
    ///
    /// Allocating wrapper over [`Scene::monostatic_rx_multi_into`] using
    /// the thread-local [`ChannelWorkspace`]; bitwise identical to
    /// [`Scene::monostatic_rx_multi_uncached`].
    pub fn monostatic_rx_multi(
        &self,
        comp: &TxComponent,
        nodes: &[NodeInterface<'_>],
        rx_idx: usize,
    ) -> Signal {
        let wave_fp = wave_fingerprint(comp);
        let mut out = Signal::zeros(comp.signal.fs, comp.signal.fc, comp.signal.len());
        with_channel_workspace(|ws| {
            self.monostatic_rx_multi_into(ws, comp, wave_fp, nodes, rx_idx, &mut out)
        });
        out
    }

    /// The cached, allocation-free monostatic render (DESIGN.md §13).
    ///
    /// `wave_fp` must be [`wave_fingerprint`]`(comp)` — callers compute
    /// it once per burst and reuse it across chirps/antennas. After the
    /// workspace is warm (same scene, waveform and node geometry), a
    /// render performs **zero** heap allocations: the static-scene
    /// response is copied from cache and each node's hoisted ray tables
    /// are replayed with only the Γ-schedule evaluated per sample
    /// (pinned by `tests/zero_alloc.rs`).
    pub fn monostatic_rx_multi_into(
        &self,
        ws: &mut ChannelWorkspace,
        comp: &TxComponent,
        wave_fp: u64,
        nodes: &[NodeInterface<'_>],
        rx_idx: usize,
        out: &mut Signal,
    ) {
        assert!(rx_idx < 2, "rx_idx must be 0 or 1");
        let fs = comp.signal.fs;
        let n = comp.signal.len();
        out.fs = fs;
        out.fc = comp.signal.fc;
        milback_dsp::buffer::track_growth(&mut out.samples, n);
        out.samples.resize(n, ZERO);

        let scene_fp = self.static_fingerprint();

        // Static paths first (summation order matters bitwise: the
        // uncached reference adds them in the same order).
        if !self.clutter.is_empty() || self.self_interference_db.is_some() {
            let key = StaticKey {
                scene: scene_fp,
                wave: wave_fp,
                rx_idx,
            };
            let response = ws.static_response(key, || {
                let mut acc = vec![ZERO; n];
                self.add_static_paths(comp, rx_idx, &mut acc);
                acc
            });
            out.samples.copy_from_slice(response);
        } else {
            out.samples.fill(ZERO);
        }

        for node in nodes {
            let key = RayKey {
                scene: scene_fp,
                wave: wave_fp,
                rx_idx,
                pose: pose_bits(&node.pose),
                fsa: fsa_fingerprint(node.fsa),
            };
            let tables = ws.ray_tables(key, || self.build_ray_tables(comp, node, rx_idx));
            accumulate_node(tables, node.gamma, fs, &mut out.samples);
        }
    }

    /// Accumulates one additional node's backscatter **on top of** an
    /// already-rendered capture — the clutter-composition hook behind
    /// inter-node interference in the dense-network fabric (DESIGN.md
    /// §16): a scheduled node's Field-2 render first draws its own
    /// return through [`Scene::monostatic_rx_multi_into`], then layers
    /// each neighbor's reflected tones in with this method.
    ///
    /// Bitwise identical to having passed the extra node in the `nodes`
    /// slice of [`Scene::monostatic_rx_multi_into`] (the channel is
    /// linear and both paths run the same [`RayTables`] replay), and
    /// allocation-free once the neighbor's tables are cached in `ws`.
    /// `out` must hold the rendered capture (`comp.signal.len()`
    /// samples).
    pub fn accumulate_backscatter_into(
        &self,
        ws: &mut ChannelWorkspace,
        comp: &TxComponent,
        wave_fp: u64,
        node: &NodeInterface<'_>,
        rx_idx: usize,
        out: &mut Signal,
    ) {
        assert!(rx_idx < 2, "rx_idx must be 0 or 1");
        assert_eq!(
            out.samples.len(),
            comp.signal.len(),
            "accumulate over an already-rendered capture"
        );
        let key = RayKey {
            scene: self.static_fingerprint(),
            wave: wave_fp,
            rx_idx,
            pose: pose_bits(&node.pose),
            fsa: fsa_fingerprint(node.fsa),
        };
        let tables = ws.ray_tables(key, || self.build_ray_tables(comp, node, rx_idx));
        accumulate_node(tables, node.gamma, comp.signal.fs, &mut out.samples);
    }

    /// Reference monostatic render that bypasses every cache: fresh
    /// LUTs, fresh ray tables, fresh buffers. The fast path is asserted
    /// bitwise against this in `tests/channel_equivalence.rs` and the
    /// bench A/B leg.
    pub fn monostatic_rx_multi_uncached(
        &self,
        comp: &TxComponent,
        nodes: &[NodeInterface<'_>],
        rx_idx: usize,
    ) -> Signal {
        assert!(rx_idx < 2, "rx_idx must be 0 or 1");
        let fs = comp.signal.fs;
        let mut acc = Signal::zeros(fs, comp.signal.fc, comp.signal.len());
        self.add_static_paths(comp, rx_idx, &mut acc.samples);
        for node in nodes {
            let tables = self.build_ray_tables(comp, node, rx_idx);
            accumulate_node(&tables, node.gamma, fs, &mut acc.samples);
        }
        acc
    }

    /// Builds the hoisted [`RayTables`] for one node's backscatter rays
    /// (both ports + its mirror reflection): the round-trip-delayed
    /// envelope and, per sample, every frequency-LUT amplitude the
    /// historical inner loop evaluated on the fly.
    fn build_ray_tables(
        &self,
        comp: &TxComponent,
        node: &NodeInterface<'_>,
        rx_idx: usize,
    ) -> RayTables {
        let fc = comp.signal.fc;
        let fs = comp.signal.fs;
        let n = comp.signal.len();
        let d_tx = self.tx_pos.distance_to(&node.pose.position);
        let d_rx = self.rx_pos[rx_idx].distance_to(&node.pose.position);
        let tau_rt = (d_tx + d_rx) / SPEED_OF_LIGHT;
        let inc = node.pose.incidence_from(&self.tx_pos);
        let g_tx = self.tx_gain_towards(&node.pose.position, fc);
        let g_rx = self.rx_gain_from(rx_idx, &node.pose.position, fc);
        let rt_phase = Cpx::cis(-2.0 * PI * fc * tau_rt);

        let (f_lo, f_hi) = comp.freq_range();
        let port_luts: [FreqLut; 2] = [
            FreqLut::build(f_lo, f_hi, |f| {
                (backscatter_rx_power(1.0, g_tx, g_rx, node.fsa.gain(Port::A, inc, f), 1.0, 1.0, f)
                    * fspl(d_tx, f)
                    * fspl(d_rx, f)
                    / fspl(1.0, f).powi(2))
                .sqrt()
            }),
            FreqLut::build(f_lo, f_hi, |f| {
                (backscatter_rx_power(1.0, g_tx, g_rx, node.fsa.gain(Port::B, inc, f), 1.0, 1.0, f)
                    * fspl(d_tx, f)
                    * fspl(d_rx, f)
                    / fspl(1.0, f).powi(2))
                .sqrt()
            }),
        ];
        let mirror_lut = self.mirror.as_ref().map(|m| {
            let sigma = m.rcs_at(inc);
            // The extra 2·depth path shows up as a carrier phase rotation
            // (the mm-scale envelope delay is far below range resolution).
            let phase = Cpx::cis(-2.0 * PI * fc * 2.0 * m.depth_offset / SPEED_OF_LIGHT);
            (
                FreqLut::build(f_lo, f_hi, |f| {
                    (radar_rx_power(1.0, g_tx, g_rx, sigma, 1.0, f) * fspl(d_tx, f) * fspl(d_rx, f)
                        / fspl(1.0, f).powi(2))
                    .sqrt()
                }),
                m.switch_coupling,
                phase,
            )
        });

        let mut delayed = Vec::new();
        comp.signal.delayed_into(tau_rt, &mut delayed);
        let mut amp = [Vec::with_capacity(n), Vec::with_capacity(n)];
        let mut amp_mirror = Vec::with_capacity(if mirror_lut.is_some() { n } else { 0 });
        for i in 0..n {
            let t = i as f64 / fs;
            let t_emit = (t - tau_rt).max(0.0);
            let f_inst = comp.profile.freq_at(t_emit);
            amp[0].push(port_luts[0].get(f_inst));
            amp[1].push(port_luts[1].get(f_inst));
            if let Some((lut, _, _)) = &mirror_lut {
                amp_mirror.push(lut.get(f_inst));
            }
        }
        RayTables {
            delayed,
            amp,
            amp_mirror,
            rt_phase,
            mirror: mirror_lut.map(|(_, coupling, phase)| (coupling, phase)),
        }
    }

    /// Adds the node-independent static paths (clutter + TX→RX leakage)
    /// into `acc` through the allocation-free
    /// [`Signal::accumulate_delayed`] kernel.
    fn add_static_paths(&self, comp: &TxComponent, rx_idx: usize, acc: &mut [Cpx]) {
        let fc = comp.signal.fc;
        // --- Static clutter ---------------------------------------------
        for r in &self.clutter {
            let d1 = self.tx_pos.distance_to(&r.position);
            let d2 = self.rx_pos[rx_idx].distance_to(&r.position);
            let tau = (d1 + d2) / SPEED_OF_LIGHT;
            let g_t = self.tx_gain_towards(&r.position, fc);
            let g_r = self.rx_gain_from(rx_idx, &r.position, fc);
            // Bistatic radar equation split across the two legs.
            let p = radar_rx_power(1.0, g_t, g_r, r.rcs, 1.0, fc) * fspl(d1, fc) * fspl(d2, fc)
                / fspl(1.0, fc).powi(2);
            let coeff = Cpx::cis(-2.0 * PI * fc * tau) * p.sqrt();
            comp.signal.accumulate_delayed(tau, coeff, acc);
        }

        // --- TX → RX self-interference ----------------------------------
        if let Some(si_db) = self.self_interference_db {
            let tau = 1e-9; // ~30 cm equivalent leakage path
            let coeff = Cpx::cis(-2.0 * PI * fc * tau) * db_to_ratio(si_db).sqrt();
            comp.signal.accumulate_delayed(tau, coeff, acc);
        }
    }

    // -----------------------------------------------------------------
    // Narrowband (per-tone) link-budget helpers
    // -----------------------------------------------------------------

    /// One-way power gain from the AP TX to the node's FSA `port` at RF
    /// frequency `f` (linear ratio Pr/Pt). The downlink budget.
    pub fn tone_gain_to_port(&self, pose: &Pose, fsa: &DualPortFsa, port: Port, f: f64) -> f64 {
        let d = self.tx_pos.distance_to(&pose.position);
        let inc = pose.incidence_from(&self.tx_pos);
        let g_tx = self.tx_gain_towards(&pose.position, f);
        one_way_rx_power(1.0, g_tx, fsa.gain(port, inc, f), d, f)
    }

    /// Two-way power gain for a tone at RF `f` reflected by the node's
    /// `port` (fully reflective, |Γ|=1), received at RX antenna `rx_idx`.
    /// The uplink/localization budget.
    pub fn tone_backscatter_gain(
        &self,
        pose: &Pose,
        fsa: &DualPortFsa,
        port: Port,
        f: f64,
        rx_idx: usize,
    ) -> f64 {
        let d_tx = self.tx_pos.distance_to(&pose.position);
        let d_rx = self.rx_pos[rx_idx].distance_to(&pose.position);
        let inc = pose.incidence_from(&self.tx_pos);
        let g_tx = self.tx_gain_towards(&pose.position, f);
        let g_rx = self.rx_gain_from(rx_idx, &pose.position, f);
        let g_node = fsa.gain(port, inc, f);
        backscatter_rx_power(1.0, g_tx, g_rx, g_node, 1.0, 1.0, f) * fspl(d_tx, f) * fspl(d_rx, f)
            / fspl(1.0, f).powi(2)
    }

    /// Geometric round-trip delay from TX via the node to RX `rx_idx`.
    pub fn round_trip_delay(&self, pose: &Pose, rx_idx: usize) -> f64 {
        (self.tx_pos.distance_to(&pose.position) + self.rx_pos[rx_idx].distance_to(&pose.position))
            / SPEED_OF_LIGHT
    }
}

/// Replays one node's hoisted [`RayTables`] against a Γ-schedule,
/// accumulating into `acc`. This is the only per-sample loop left on
/// the monostatic path: one schedule evaluation and three
/// multiply-adds per sample, no trigonometry, no LUT walks. Both the
/// cached and the uncached render call it, so they agree bitwise.
fn accumulate_node(tables: &RayTables, gamma: &GammaSchedule<'_>, fs: f64, acc: &mut [Cpx]) {
    for (i, &s) in tables.delayed.iter().enumerate() {
        let t = i as f64 / fs;
        let gammas = gamma(t);
        let coeff = gammas[0] * tables.amp[0][i] + gammas[1] * tables.amp[1][i];
        acc[i] += s * coeff * tables.rt_phase;

        // --- Mirror (structural) reflection, switch-coupled ----------
        if let Some((coupling, phase)) = tables.mirror {
            // Weak coupling to port A's switch state.
            let state = 2.0 * gammas[0].abs() - 1.0;
            let amp = tables.amp_mirror[i] * (1.0 + coupling * state);
            acc[i] += s * tables.rt_phase * phase * amp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::deg_to_rad;
    use milback_dsp::noise::ratio_to_db;

    fn static_gamma(reflective: bool) -> impl Fn(f64) -> [Cpx; 2] {
        move |_t| {
            if reflective {
                [Cpx::new(-0.94, 0.0), Cpx::new(-0.94, 0.0)]
            } else {
                [Cpx::new(0.05, 0.0), Cpx::new(0.05, 0.0)]
            }
        }
    }

    #[test]
    fn freq_profile_evaluation() {
        let cfg = ChirpConfig::milback_sawtooth();
        let p = FreqProfile::Sawtooth(cfg);
        assert_eq!(p.freq_at(0.0), 26.5e9);
        let p = FreqProfile::Constant(27.5e9);
        assert_eq!(p.freq_at(1.0), 27.5e9);
        let p = FreqProfile::Triangular(ChirpConfig::milback_triangular());
        assert_eq!(p.freq_at(22.5e-6), 29.5e9);
    }

    #[test]
    fn downlink_tone_gain_matches_budget() {
        // Node at 2 m, facing the AP; tone at the port-A alignment frequency.
        let scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        let pose = Pose::facing_ap(2.0, 0.0, 0.0);
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let g = scene.tone_gain_to_port(&pose, &fsa, Port::A, f);
        let g_db = ratio_to_db(g);
        // 20 (horn) + ~12.5 (FSA) − FSPL(2m) ≈ 20 + 12.5 − 67.5 ≈ −35 dB.
        assert!((-40.0..=-30.0).contains(&g_db), "downlink gain {g_db} dB");
    }

    #[test]
    fn uplink_gain_is_roughly_downlink_squared_over_horn() {
        let scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        let pose = Pose::facing_ap(3.0, 0.0, 0.0);
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let one = scene.tone_gain_to_port(&pose, &fsa, Port::A, f);
        let two = scene.tone_backscatter_gain(&pose, &fsa, Port::A, f, 0);
        // Pr2/Pt = (Pr1/Pt)² × (G_rx/G_tx) here since geometry is symmetric.
        let expect = one * one * 1.0;
        let ratio = two / expect;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn tone_to_aligned_port_beats_misaligned() {
        let scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        // Node rotated 15°: port A aligns at one frequency, port B at another.
        let psi = deg_to_rad(15.0);
        let pose = Pose::facing_ap(2.0, 0.0, psi);
        let inc = pose.incidence_from(&Point::origin());
        let fa = fsa.frequency_for_angle(Port::A, inc).unwrap();
        let fb = fsa.frequency_for_angle(Port::B, inc).unwrap();
        // Tone at fa: port A receives strongly, port B weakly.
        let ga = scene.tone_gain_to_port(&pose, &fsa, Port::A, fa);
        let gb = scene.tone_gain_to_port(&pose, &fsa, Port::B, fa);
        assert!(
            ratio_to_db(ga / gb) > 10.0,
            "port isolation {} dB",
            ratio_to_db(ga / gb)
        );
        // And symmetrically at fb.
        let ga2 = scene.tone_gain_to_port(&pose, &fsa, Port::A, fb);
        let gb2 = scene.tone_gain_to_port(&pose, &fsa, Port::B, fb);
        assert!(ratio_to_db(gb2 / ga2) > 10.0);
    }

    #[test]
    fn to_node_port_power_matches_tone_gain() {
        let scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        let pose = Pose::facing_ap(2.0, 0.0, 0.0);
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let fs = 1e8;
        let sig = Signal::tone(fs, f, 0.0, 1.0, 2000);
        let comp = TxComponent::tone(sig, f);
        let rx = scene.to_node_port(&comp, &pose, &fsa, Port::A);
        let expected = scene.tone_gain_to_port(&pose, &fsa, Port::A, f);
        // Skip the first samples affected by the delay zero-fill.
        let p: f64 =
            rx.samples[100..].iter().map(|c| c.norm_sq()).sum::<f64>() / (rx.len() - 100) as f64;
        assert!((p / expected - 1.0).abs() < 0.05, "p {p} vs {expected}");
    }

    #[test]
    fn monostatic_reflective_vs_absorptive_contrast() {
        let scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        let pose = Pose::facing_ap(2.0, 0.0, 0.0);
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let fs = 1e8;
        let sig = Signal::tone(fs, f, 0.0, 1.0, 2000);
        let comp = TxComponent::tone(sig, f);
        let g_refl = static_gamma(true);
        let g_abs = static_gamma(false);
        let node_r = NodeInterface {
            pose,
            fsa: &fsa,
            gamma: &g_refl,
        };
        let node_a = NodeInterface {
            pose,
            fsa: &fsa,
            gamma: &g_abs,
        };
        let rx_r = scene.monostatic_rx(&comp, &node_r, 0);
        let rx_a = scene.monostatic_rx(&comp, &node_a, 0);
        let pr: f64 = rx_r.samples[100..].iter().map(|c| c.norm_sq()).sum();
        let pa: f64 = rx_a.samples[100..].iter().map(|c| c.norm_sq()).sum();
        let contrast = ratio_to_db(pr / pa);
        // |Γ| 0.94 vs 0.05 → ~25 dB power contrast (with both ports equal).
        assert!(contrast > 20.0, "contrast {contrast} dB");
    }

    #[test]
    fn monostatic_power_matches_budget() {
        let scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        let pose = Pose::facing_ap(2.0, 0.0, 0.0);
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let fs = 1e8;
        let comp = TxComponent::tone(Signal::tone(fs, f, 0.0, 1.0, 4000), f);
        // Only port A reflective, |Γ| = 1, port B perfectly absorbing.
        let g = |_t: f64| [Cpx::new(-1.0, 0.0), Cpx::new(0.0, 0.0)];
        let node = NodeInterface {
            pose,
            fsa: &fsa,
            gamma: &g,
        };
        let rx = scene.monostatic_rx(&comp, &node, 0);
        let p: f64 =
            rx.samples[200..].iter().map(|c| c.norm_sq()).sum::<f64>() / (rx.len() - 200) as f64;
        let expected = scene.tone_backscatter_gain(&pose, &fsa, Port::A, f, 0);
        assert!((p / expected - 1.0).abs() < 0.1, "p {p} vs {expected}");
    }

    #[test]
    fn clutter_adds_static_return() {
        let mut scene = Scene::free_space();
        scene.clutter.push(Reflector {
            position: Point::new(4.0, 0.0),
            rcs: 1.0,
        });
        let fsa = DualPortFsa::milback();
        // Node far off to the side so its return is negligible.
        let pose = Pose::facing_ap(2.0, deg_to_rad(80.0), 0.0);
        let f = 28e9;
        let comp = TxComponent::tone(Signal::tone(1e8, f, 0.0, 1.0, 2000), f);
        let g = static_gamma(false);
        let node = NodeInterface {
            pose,
            fsa: &fsa,
            gamma: &g,
        };
        let rx = scene.monostatic_rx(&comp, &node, 0);
        let p: f64 =
            rx.samples[100..].iter().map(|c| c.norm_sq()).sum::<f64>() / (rx.len() - 100) as f64;
        assert!(p > 1e-12, "clutter return missing: {p}");
    }

    #[test]
    fn self_interference_dominates_when_enabled() {
        let mut scene = Scene::free_space();
        scene.self_interference_db = Some(-45.0);
        let fsa = DualPortFsa::milback();
        let pose = Pose::facing_ap(8.0, 0.0, 0.0);
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let comp = TxComponent::tone(Signal::tone(1e8, f, 0.0, 1.0, 2000), f);
        let g = static_gamma(true);
        let node = NodeInterface {
            pose,
            fsa: &fsa,
            gamma: &g,
        };
        let rx = scene.monostatic_rx(&comp, &node, 0);
        let p: f64 =
            rx.samples[100..].iter().map(|c| c.norm_sq()).sum::<f64>() / (rx.len() - 100) as f64;
        // −45 dB self-interference >> node return at 8 m (≈ −90 dB).
        assert!(ratio_to_db(p) > -50.0, "{} dB", ratio_to_db(p));
    }

    #[test]
    fn multi_node_capture_is_sum_of_singles() {
        // Channel linearity: two nodes rendered together equal the sum of
        // each rendered alone (minus one copy of the static paths).
        let scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        let pose1 = Pose::facing_ap(2.0, deg_to_rad(-10.0), 0.0);
        let pose2 = Pose::facing_ap(4.0, deg_to_rad(15.0), 0.0);
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let comp = TxComponent::tone(Signal::tone(1e8, f, 0.0, 1.0, 1000), f);
        let g1 = static_gamma(true);
        let g2 = static_gamma(true);
        let n1 = NodeInterface {
            pose: pose1,
            fsa: &fsa,
            gamma: &g1,
        };
        let n2 = NodeInterface {
            pose: pose2,
            fsa: &fsa,
            gamma: &g2,
        };
        let both = scene.monostatic_rx_multi(&comp, &[n1, n2], 0);
        let g1 = static_gamma(true);
        let g2 = static_gamma(true);
        let n1 = NodeInterface {
            pose: pose1,
            fsa: &fsa,
            gamma: &g1,
        };
        let n2 = NodeInterface {
            pose: pose2,
            fsa: &fsa,
            gamma: &g2,
        };
        let a = scene.monostatic_rx(&comp, &n1, 0);
        let b = scene.monostatic_rx(&comp, &n2, 0);
        for i in 0..both.len() {
            let want = a.samples[i] + b.samples[i]; // static paths are zero in free space
            assert!((both.samples[i] - want).abs() < 1e-15, "sample {i}");
        }
    }

    #[test]
    fn accumulate_backscatter_matches_multi_render_bitwise() {
        // The interference hook (target rendered, then a neighbor layered
        // in) must equal rendering both nodes through the multi path —
        // same cache keys, same table replay, bit for bit.
        let mut scene = Scene::milback_indoor();
        let fsa = DualPortFsa::milback();
        let target = Pose::facing_ap(2.0, deg_to_rad(-4.0), deg_to_rad(10.0));
        let neighbor = Pose::facing_ap(2.4, deg_to_rad(6.0), deg_to_rad(12.0));
        scene.steer_towards(&target.position);
        let cfg = ChirpConfig::milback_sawtooth();
        let comp = TxComponent {
            signal: cfg.sawtooth(),
            profile: FreqProfile::Sawtooth(cfg),
        };
        let wave_fp = crate::workspace::wave_fingerprint(&comp);
        let g_t = static_gamma(true);
        let g_n = static_gamma(false);
        let node_t = NodeInterface {
            pose: target,
            fsa: &fsa,
            gamma: &g_t,
        };
        let node_n = NodeInterface {
            pose: neighbor,
            fsa: &fsa,
            gamma: &g_n,
        };
        for rx_idx in 0..2 {
            let mut ws = crate::workspace::ChannelWorkspace::default();
            let mut composed = Signal::zeros(comp.signal.fs, comp.signal.fc, comp.signal.len());
            scene.monostatic_rx_multi_into(
                &mut ws,
                &comp,
                wave_fp,
                std::slice::from_ref(&node_t),
                rx_idx,
                &mut composed,
            );
            scene.accumulate_backscatter_into(
                &mut ws,
                &comp,
                wave_fp,
                &node_n,
                rx_idx,
                &mut composed,
            );
            let joint = scene.monostatic_rx_multi_uncached(
                &comp,
                &[
                    NodeInterface {
                        pose: target,
                        fsa: &fsa,
                        gamma: &g_t,
                    },
                    NodeInterface {
                        pose: neighbor,
                        fsa: &fsa,
                        gamma: &g_n,
                    },
                ],
                rx_idx,
            );
            assert_eq!(composed.samples, joint.samples, "rx {rx_idx} diverged");
        }
    }

    #[test]
    fn steered_away_node_is_suppressed() {
        let mut scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        let on_beam = Pose::facing_ap(3.0, 0.0, 0.0);
        let off_beam = Pose::facing_ap(3.0, deg_to_rad(30.0), 0.0);
        scene.steer_towards(&on_beam.position);
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let g_on = scene.tone_backscatter_gain(&on_beam, &fsa, Port::A, f, 0);
        let g_off = scene.tone_backscatter_gain(&off_beam, &fsa, Port::A, f, 0);
        // Two horn passes of ≥20 dB suppression each.
        assert!(
            ratio_to_db(g_on / g_off) > 35.0,
            "{} dB",
            ratio_to_db(g_on / g_off)
        );
    }

    #[test]
    fn mirror_rcs_peaks_at_center() {
        let m = MirrorReflection::milback();
        let at_center = m.rcs_at(m.center);
        assert_eq!(at_center, m.peak_rcs);
        assert!(m.rcs_at(m.center + deg_to_rad(10.0)) < 0.01 * m.peak_rcs);
    }

    #[test]
    fn rx_antennas_see_phase_difference() {
        let scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        // Node off boresight → path difference between the two RX antennas.
        let phi = deg_to_rad(20.0);
        let pose = Pose::facing_ap(3.0, phi, 0.0);
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let comp = TxComponent::tone(Signal::tone(1e8, f, 0.0, 1.0, 1000), f);
        let g = static_gamma(true);
        let node = NodeInterface {
            pose,
            fsa: &fsa,
            gamma: &g,
        };
        let rx0 = scene.monostatic_rx(&comp, &node, 0);
        let rx1 = scene.monostatic_rx(&comp, &node, 1);
        let dphi = (rx0.samples[500] * rx1.samples[500].conj()).arg();
        // Expected phase difference: 2π·d_ant·sin(φ)/λ.
        let d_ant = scene.rx_pos[0].distance_to(&scene.rx_pos[1]);
        let lambda = SPEED_OF_LIGHT / f;
        let expected = 2.0 * PI * d_ant * phi.sin() / lambda;
        assert!(
            (dphi - expected).abs() < 0.05,
            "measured {dphi}, expected {expected}"
        );
    }
}
