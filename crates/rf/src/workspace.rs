//! Reusable channel-synthesis workspace: the static-scene response
//! cache and per-ray tables behind the fast monostatic render path
//! (DESIGN.md §13).
//!
//! A five-chirp Field-2 burst renders the *same* static scene (clutter
//! plus TX→RX leakage) and the *same* node geometry ten times (five
//! chirps × two RX antennas) — only the node's reflection-coefficient
//! schedule changes between chirps. The [`ChannelWorkspace`] caches
//! everything that depends purely on (scene, waveform, geometry):
//!
//! * the summed **static-scene response** per (scene, waveform, RX
//!   antenna) — reused across every chirp of a burst and across trials
//!   with unchanged geometry,
//! * per-node **ray tables** (delayed envelope + per-sample LUT
//!   amplitude products + round-trip phasor) per (scene, waveform,
//!   pose, FSA, RX antenna),
//! * per-port **downlink tables** for `Scene::to_node_port`.
//!
//! ## Invalidation
//!
//! `Scene` is a plain value with public fields — experiments mutate it
//! directly (`scene.clutter.push(..)`, `steer_towards`, node moves), so
//! a hidden mutation-counting generation number could not see every
//! edit. The generation counter is therefore a **content generation**:
//! [`Scene::static_fingerprint`](crate::channel::Scene::static_fingerprint)
//! folds every static-relevant field into
//! an FNV-1a hash, and cache keys carry that fingerprint (plus waveform
//! and geometry fingerprints). Any scene mutation changes the
//! fingerprint, which misses the cache and rebuilds — no explicit
//! invalidation hooks needed, no way to forget one.
//!
//! ## Telemetry
//!
//! Per-thread caches warm independently, so all counters carry the
//! `.local` suffix and are stripped from the deterministic telemetry
//! view (README §Observability):
//!
//! * `rf.scene.cache.hit.local` / `rf.scene.cache.miss.local` — static
//!   response lookups,
//! * `rf.ray.cache.hit.local` / `rf.ray.cache.miss.local` — node ray
//!   tables,
//! * `rf.port.cache.hit.local` / `rf.port.cache.miss.local` — downlink
//!   port tables,
//! * `rf.workspace.grow.local` — one count per cache entry built
//!   (insert or LRU replacement).
//!
//! `rf.workspace.reuse` counts thread-local checkouts and is
//! thread-invariant, mirroring `dsp.workspace.reuse`.

use crate::channel::{PortTables, RayTables, TxComponent};
use crate::fsa::{DualPortFsa, Port};
use crate::geometry::Pose;
use milback_dsp::num::Cpx;
use milback_telemetry as telemetry;
use std::cell::RefCell;

// ---------------------------------------------------------------------
// FNV-1a fingerprints
// ---------------------------------------------------------------------

/// Incremental FNV-1a over 64-bit words. Hashing whole `f64` bit
/// patterns (not bytes) keeps a 6 400-sample waveform fingerprint in
/// the ~10 µs range — negligible next to a render and amortized by the
/// callers that cache the result per burst.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    pub(crate) fn word(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }

    #[inline]
    pub(crate) fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a transmitted component: sample rate, carrier,
/// frequency profile and every sample's bit pattern. Two components
/// with equal fingerprints render identically through the channel.
///
/// Callers on the hot path (`Network`, `link`) compute this once per
/// burst/symbol batch and pass it to the `_into` render entry points;
/// the allocating wrappers recompute it per call.
pub fn wave_fingerprint(comp: &TxComponent) -> u64 {
    let mut h = Fnv::new();
    h.f64(comp.signal.fs);
    h.f64(comp.signal.fc);
    crate::channel::fold_profile(&mut h, &comp.profile);
    h.word(comp.signal.len() as u64);
    for c in &comp.signal.samples {
        h.f64(c.re);
        h.f64(c.im);
    }
    h.finish()
}

/// Fingerprint of an FSA design (all [`crate::fsa::FsaConfig`] fields).
pub fn fsa_fingerprint(fsa: &DualPortFsa) -> u64 {
    let cfg = fsa.config();
    let mut h = Fnv::new();
    h.word(cfg.n_elements as u64);
    h.f64(cfg.spacing);
    h.f64(cfg.feed_length);
    h.word(cfg.harmonic as u64);
    h.f64(cfg.feed_loss_neper);
    h.f64(cfg.efficiency_db);
    h.f64(cfg.element.peak_dbi);
    h.f64(cfg.element.q);
    h.f64(cfg.element.floor_db);
    h.f64(cfg.f_lo);
    h.f64(cfg.f_hi);
    h.finish()
}

#[inline]
pub(crate) fn pose_bits(pose: &Pose) -> [u64; 3] {
    [
        pose.position.x.to_bits(),
        pose.position.y.to_bits(),
        pose.facing.to_bits(),
    ]
}

// ---------------------------------------------------------------------
// Cache keys and entries
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StaticKey {
    pub scene: u64,
    pub wave: u64,
    pub rx_idx: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RayKey {
    pub scene: u64,
    pub wave: u64,
    pub rx_idx: usize,
    pub pose: [u64; 3],
    pub fsa: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PortKey {
    pub scene: u64,
    pub wave: u64,
    pub pose: [u64; 3],
    pub fsa: u64,
    pub port: Port,
}

struct Entry<K, V> {
    key: K,
    value: V,
    stamp: u64,
}

/// Tiny stamp-LRU: linear scan (a handful of entries), min-stamp
/// replacement when full. `hit`/`miss` name the telemetry counters.
struct Lru<K, V> {
    entries: Vec<Entry<K, V>>,
    cap: usize,
    hit: &'static str,
    miss: &'static str,
}

impl<K: PartialEq + Copy, V> Lru<K, V> {
    fn new(cap: usize, hit: &'static str, miss: &'static str) -> Self {
        Self {
            entries: Vec::new(),
            cap,
            hit,
            miss,
        }
    }

    fn get_or_build(&mut self, key: K, stamp: u64, build: impl FnOnce() -> V) -> &V {
        let idx = match self.entries.iter().position(|e| e.key == key) {
            Some(i) => {
                telemetry::counter_add(self.hit, 1);
                self.entries[i].stamp = stamp;
                i
            }
            None => {
                telemetry::counter_add(self.miss, 1);
                telemetry::counter_add("rf.workspace.grow.local", 1);
                let entry = Entry {
                    key,
                    value: build(),
                    stamp,
                };
                if self.entries.len() < self.cap {
                    self.entries.push(entry);
                    self.entries.len() - 1
                } else {
                    // `cap >= 1`, so a full cache always has an eviction
                    // victim; fall back to slot 0 rather than panicking.
                    let i = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.stamp)
                        .map_or(0, |(i, _)| i);
                    self.entries[i] = entry;
                    i
                }
            }
        };
        &self.entries[idx].value
    }
}

// ---------------------------------------------------------------------
// The workspace
// ---------------------------------------------------------------------

/// Caller-owned cache set for channel synthesis. Mirrors
/// `milback_ap::workspace::DspWorkspace`: own one directly or borrow
/// the thread-local instance through [`with_channel_workspace`].
pub struct ChannelWorkspace {
    statics: Lru<StaticKey, Vec<Cpx>>,
    rays: Lru<RayKey, RayTables>,
    ports: Lru<PortKey, PortTables>,
    clock: u64,
}

impl ChannelWorkspace {
    /// An empty workspace; caches fill on first use.
    pub fn new() -> Self {
        Self {
            statics: Lru::new(8, "rf.scene.cache.hit.local", "rf.scene.cache.miss.local"),
            rays: Lru::new(16, "rf.ray.cache.hit.local", "rf.ray.cache.miss.local"),
            ports: Lru::new(8, "rf.port.cache.hit.local", "rf.port.cache.miss.local"),
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    pub(crate) fn static_response(
        &mut self,
        key: StaticKey,
        build: impl FnOnce() -> Vec<Cpx>,
    ) -> &[Cpx] {
        let stamp = self.tick();
        self.statics.get_or_build(key, stamp, build)
    }

    pub(crate) fn ray_tables(
        &mut self,
        key: RayKey,
        build: impl FnOnce() -> RayTables,
    ) -> &RayTables {
        let stamp = self.tick();
        self.rays.get_or_build(key, stamp, build)
    }

    pub(crate) fn port_tables(
        &mut self,
        key: PortKey,
        build: impl FnOnce() -> PortTables,
    ) -> &PortTables {
        let stamp = self.tick();
        self.ports.get_or_build(key, stamp, build)
    }

    /// Number of cached entries across all caches (test/diagnostic aid).
    pub fn cached_entries(&self) -> usize {
        self.statics.entries.len() + self.rays.entries.len() + self.ports.entries.len()
    }
}

impl Default for ChannelWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static WORKSPACE: RefCell<ChannelWorkspace> = RefCell::new(ChannelWorkspace::new());
}

/// Runs `f` with this thread's shared [`ChannelWorkspace`].
///
/// Counts one `rf.workspace.reuse` per checkout. Re-entrant checkouts
/// (a closure calling [`with_channel_workspace`] again) fall back to a
/// fresh temporary workspace rather than panicking — correctness never
/// depends on which cache set a call lands on.
pub fn with_channel_workspace<R>(f: impl FnOnce(&mut ChannelWorkspace) -> R) -> R {
    telemetry::counter_add("rf.workspace.reuse", 1);
    WORKSPACE.with(|w| match w.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut ChannelWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Scene, TxComponent};
    use milback_dsp::signal::Signal;

    #[test]
    fn lru_replaces_least_recently_used() {
        let mut lru: Lru<u64, u64> = Lru::new(2, "t.hit.local", "t.miss.local");
        lru.get_or_build(1, 1, || 10);
        lru.get_or_build(2, 2, || 20);
        lru.get_or_build(1, 3, || 99); // hit: keeps 10
        assert_eq!(*lru.get_or_build(1, 4, || 99), 10);
        lru.get_or_build(3, 5, || 30); // evicts key 2 (stamp 2)
        assert_eq!(lru.entries.len(), 2);
        assert!(lru.entries.iter().any(|e| e.key == 1));
        assert!(lru.entries.iter().any(|e| e.key == 3));
    }

    #[test]
    fn wave_fingerprint_separates_contents_and_metadata() {
        let mk =
            |f_off: f64| TxComponent::tone(Signal::tone(1e8, 28e9, f_off, 1.0, 64), 28e9 + f_off);
        let a = wave_fingerprint(&mk(0.0));
        let b = wave_fingerprint(&mk(1e6));
        assert_ne!(a, b, "different samples must fingerprint differently");
        assert_eq!(a, wave_fingerprint(&mk(0.0)), "fingerprint must be stable");
    }

    #[test]
    fn scene_fingerprint_sees_every_static_field() {
        let base = Scene::milback_indoor();
        let fp = base.static_fingerprint();
        assert_eq!(fp, base.static_fingerprint(), "fingerprint must be stable");

        let mut steered = base.clone();
        steered.steer_towards(&crate::geometry::Point::new(3.0, 1.0));
        assert_ne!(fp, steered.static_fingerprint(), "steer not covered");

        let mut decluttered = base.clone();
        decluttered.clutter.pop();
        assert_ne!(fp, decluttered.static_fingerprint(), "clutter not covered");

        let mut no_si = base.clone();
        no_si.self_interference_db = None;
        assert_ne!(fp, no_si.static_fingerprint(), "SI not covered");

        let mut mirror_moved = base.clone();
        mirror_moved.mirror.as_mut().unwrap().depth_offset += 1e-3;
        assert_ne!(fp, mirror_moved.static_fingerprint(), "mirror not covered");

        let mut rx_moved = base;
        rx_moved.rx_pos[1].y += 1e-4;
        assert_ne!(fp, rx_moved.static_fingerprint(), "rx_pos not covered");
    }

    #[test]
    fn with_channel_workspace_tolerates_nesting() {
        std::thread::spawn(|| {
            with_channel_workspace(|ws| {
                let key = StaticKey {
                    scene: 1,
                    wave: 2,
                    rx_idx: 0,
                };
                ws.static_response(key, Vec::new);
                assert_eq!(ws.cached_entries(), 1);
                with_channel_workspace(|inner| {
                    assert_eq!(inner.cached_entries(), 0, "nested checkout saw outer");
                });
            });
            with_channel_workspace(|ws| {
                assert_eq!(ws.cached_entries(), 1, "workspace was not reused");
            });
        })
        .join()
        .unwrap();
    }
}
