//! Free-space propagation and backscatter link budgets.
//!
//! mmWave links are line-of-sight and the evaluation environment is a room,
//! so free-space (Friis) propagation with discrete clutter reflectors is
//! the appropriate model. All formulas follow the standard radar/Friis
//! forms; amplitudes are voltage ratios (power ratio = amplitude²).

use crate::geometry::{wavelength, SPEED_OF_LIGHT};
use std::f64::consts::PI;

/// Free-space path loss (power ratio < 1) over distance `d` meters at
/// frequency `f` Hz: `(λ / 4πd)²`.
pub fn fspl(d: f64, f: f64) -> f64 {
    assert!(d > 0.0, "distance must be positive");
    let l = wavelength(f) / (4.0 * PI * d);
    l * l
}

/// Free-space path loss in dB (positive number).
pub fn fspl_db(d: f64, f: f64) -> f64 {
    -10.0 * fspl(d, f).log10()
}

/// One-way received power: `Pr = Pt·Gt·Gr·(λ/4πd)²`.
///
/// Used for the downlink budget (AP → node port).
pub fn one_way_rx_power(pt: f64, gt: f64, gr: f64, d: f64, f: f64) -> f64 {
    pt * gt * gr * fspl(d, f)
}

/// Backscatter (two-way) received power for an antenna-mode reflector:
///
/// `Pr = Pt·Gt·Gr·Gn²·|Γ|²·(λ/4πd)⁴`
///
/// The node captures with gain `Gn`, reflects with reflection coefficient
/// `Γ`, and re-radiates with the same gain (reciprocity). Used for the
/// uplink and localization budgets.
pub fn backscatter_rx_power(
    pt: f64,
    g_tx: f64,
    g_rx: f64,
    g_node: f64,
    refl_power: f64,
    d: f64,
    f: f64,
) -> f64 {
    let l = fspl(d, f);
    pt * g_tx * g_rx * g_node * g_node * refl_power * l * l
}

/// Radar-equation received power from a passive scatterer of RCS `sigma`
/// m²: `Pr = Pt·Gt·Gr·σ·λ²/((4π)³·d⁴)`. Used for clutter returns.
pub fn radar_rx_power(pt: f64, g_tx: f64, g_rx: f64, sigma: f64, d: f64, f: f64) -> f64 {
    let lambda = wavelength(f);
    pt * g_tx * g_rx * sigma * lambda * lambda / ((4.0 * PI).powi(3) * d.powi(4))
}

/// Complex channel amplitude (voltage ratio and carrier phase) for a path
/// of total length `path_len` meters with power gain `power_gain`:
/// amplitude `√power_gain`, phase `−2π·f·path_len/c`.
pub fn path_coefficient(power_gain: f64, path_len: f64, f: f64) -> milback_dsp::num::Cpx {
    let phase = -2.0 * PI * f * path_len / SPEED_OF_LIGHT;
    milback_dsp::num::Cpx::from_polar(power_gain.sqrt(), phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_dsp::noise::ratio_to_db;

    #[test]
    fn fspl_at_28ghz_1m() {
        // FSPL(1 m, 28 GHz) ≈ 61.4 dB.
        let db = fspl_db(1.0, 28e9);
        assert!((db - 61.4).abs() < 0.2, "{db}");
    }

    #[test]
    fn fspl_doubling_distance_costs_6db() {
        let a = fspl_db(2.0, 28e9);
        let b = fspl_db(4.0, 28e9);
        assert!((b - a - 6.02).abs() < 0.01);
    }

    #[test]
    fn one_way_budget_example() {
        // Pt=27 dBm, Gt=20 dBi, Gn=12 dBi, d=2 m, f=28 GHz:
        // Pr = 27 + 20 + 12 − 67.4 ≈ −8.4 dBm.
        let pt = 0.501; // 27 dBm in watts
        let pr = one_way_rx_power(pt, 100.0, 10f64.powf(1.2), 2.0, 28e9);
        let pr_dbm = 10.0 * (pr * 1e3).log10();
        assert!((pr_dbm + 8.4).abs() < 0.3, "{pr_dbm}");
    }

    #[test]
    fn backscatter_is_square_of_one_way() {
        // With Gt=Gr and unit node gain/reflection, two-way power relative
        // to Pt equals (one-way/Pt)² when expressed as path-loss products.
        let pt = 1.0;
        let d = 3.0;
        let f = 28e9;
        let one = one_way_rx_power(pt, 1.0, 1.0, d, f);
        let two = backscatter_rx_power(pt, 1.0, 1.0, 1.0, 1.0, d, f);
        assert!((two - one * one).abs() < 1e-25);
    }

    #[test]
    fn backscatter_slope_is_12db_per_doubling() {
        let a = backscatter_rx_power(1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 28e9);
        let b = backscatter_rx_power(1.0, 1.0, 1.0, 1.0, 1.0, 4.0, 28e9);
        let drop = ratio_to_db(a / b);
        assert!((drop - 12.04).abs() < 0.05, "{drop}");
    }

    #[test]
    fn radar_equation_consistency() {
        // A scatterer with σ = Gn²λ²/4π behaves like the antenna-mode
        // backscatterer with unit reflection.
        let f = 28e9;
        let d = 2.5;
        let g_node = 15.0;
        let lambda = wavelength(f);
        let sigma = g_node * g_node * lambda * lambda / (4.0 * PI);
        let a = radar_rx_power(1.0, 1.0, 1.0, sigma, d, f);
        let b = backscatter_rx_power(1.0, 1.0, 1.0, g_node, 1.0, d, f);
        assert!((a - b).abs() < 1e-25 * a.max(b).max(1.0));
    }

    #[test]
    fn path_coefficient_magnitude_and_phase() {
        let c = path_coefficient(0.25, 1.0, SPEED_OF_LIGHT); // 1 Hz·s path → phase −2π
        assert!((c.abs() - 0.5).abs() < 1e-12);
        assert!(c.arg().abs() < 1e-6); // −2π wraps to 0
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn fspl_rejects_zero_distance() {
        fspl(0.0, 28e9);
    }
}
