//! Dual-port Frequency Scanning Antenna (FSA) model.
//!
//! The FSA is MilBack's key passive structure (paper §2, §4): a series-fed
//! array of radiating elements connected by feed-line sections. The signal
//! accumulates a frequency-dependent phase `β(f)·L` between consecutive
//! elements, so the direction of constructive combination — the beam —
//! scans with frequency. Feeding the same physical array from the opposite
//! end (port B) reverses the phase progression and produces the mirrored
//! frequency→angle map of the paper's Figure 3.
//!
//! The model is a textbook leaky/series-fed array-factor computation:
//!
//! * element `n` sits at `x_n = n·d` and is excited with amplitude
//!   `a_n = exp(−α·n)` (ohmic/leakage decay along the feed) and phase
//!   `−n·β(f)·L` (port A) or the reversed progression (port B);
//! * the far-field array factor at azimuth `θ` is
//!   `AF(θ,f) = Σ a_n·exp(jn(k·d·sinθ − β·L))`;
//! * gain is the patch element factor times `|AF|²/Σa_n²`, scaled by an
//!   efficiency factor that stands in for feed and substrate losses.
//!
//! The main beam of port A satisfies `k·d·sinθ = β·L − 2πm` for the
//! radiating space harmonic `m`, giving the closed-form scan law
//! `sinθ_A(f) = (L_e − m·c/f)/d` with `L_e` the electrical feed length per
//! element. [`FsaConfig::milback`] solves `d` and `L_e` so the paper's
//! 26.5–29.5 GHz band scans −30°…+30° (the 60°-for-3 GHz claim of §2).

use crate::antenna::{dbi_to_linear, linear_to_dbi, Antenna, PatchElement};
use crate::geometry::SPEED_OF_LIGHT;
use milback_dsp::num::Cpx;
use std::f64::consts::PI;

/// Which FSA feed port. Port B is the mirror-fed port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Primary feed port.
    A,
    /// Opposite-end feed port — mirrored frequency→angle map.
    B,
}

impl Port {
    /// The other port.
    pub fn other(self) -> Port {
        match self {
            Port::A => Port::B,
            Port::B => Port::A,
        }
    }

    /// Both ports, in `[A, B]` order.
    pub const BOTH: [Port; 2] = [Port::A, Port::B];
}

/// Physical design of a dual-port FSA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsaConfig {
    /// Number of radiating elements.
    pub n_elements: usize,
    /// Element spacing along the array, meters.
    pub spacing: f64,
    /// Electrical feed-line length between consecutive elements, meters
    /// (physical length × √ε_eff).
    pub feed_length: f64,
    /// Radiating space harmonic index.
    pub harmonic: i32,
    /// Amplitude decay per element along the feed, nepers.
    pub feed_loss_neper: f64,
    /// Overall efficiency (feed + substrate losses), dB (≤ 0).
    pub efficiency_db: f64,
    /// Radiating element pattern.
    pub element: PatchElement,
    /// Design band lower edge, Hz.
    pub f_lo: f64,
    /// Design band upper edge, Hz.
    pub f_hi: f64,
}

impl FsaConfig {
    /// Designs an FSA that scans `θ_lo..θ_hi` (radians) over `f_lo..f_hi`.
    ///
    /// Solves the scan law at both band edges for the spacing `d` and
    /// electrical length `L_e` given the harmonic `m`:
    ///
    /// `d = m·c·(1/f_lo − 1/f_hi) / (sinθ_hi − sinθ_lo)`
    /// `L_e = d·sinθ_lo + m·c/f_lo`
    pub fn design(
        f_lo: f64,
        f_hi: f64,
        theta_lo: f64,
        theta_hi: f64,
        harmonic: i32,
        n_elements: usize,
    ) -> Self {
        assert!(f_hi > f_lo && f_lo > 0.0, "invalid design band");
        assert!(theta_hi > theta_lo, "invalid scan range");
        assert!(harmonic >= 1, "harmonic must be >= 1");
        let m = harmonic as f64;
        let c = SPEED_OF_LIGHT;
        let d = m * c * (1.0 / f_lo - 1.0 / f_hi) / (theta_hi.sin() - theta_lo.sin());
        let l_e = d * theta_lo.sin() + m * c / f_lo;
        Self {
            n_elements,
            spacing: d,
            feed_length: l_e,
            harmonic,
            feed_loss_neper: 0.1,
            efficiency_db: -4.0,
            element: PatchElement::default(),
            f_lo,
            f_hi,
        }
    }

    /// MilBack's FSA: 26.5–29.5 GHz sweeping −30°…+30°, 12 elements,
    /// 5th space harmonic (paper §9.1 / Figure 10).
    pub fn milback() -> Self {
        Self::design(
            26.5e9,
            29.5e9,
            (-30f64).to_radians(),
            30f64.to_radians(),
            5,
            12,
        )
    }
}

/// A dual-port FSA instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualPortFsa {
    cfg: FsaConfig,
}

impl DualPortFsa {
    /// Builds an FSA from a configuration.
    pub fn new(cfg: FsaConfig) -> Self {
        assert!(cfg.n_elements >= 2, "FSA needs at least 2 elements");
        assert!(
            cfg.spacing > 0.0 && cfg.feed_length > 0.0,
            "bad FSA geometry"
        );
        Self { cfg }
    }

    /// The MilBack design.
    pub fn milback() -> Self {
        Self::new(FsaConfig::milback())
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FsaConfig {
        &self.cfg
    }

    /// `sin` of the main-beam angle of `port` at frequency `f`, from the
    /// scan law. May fall outside `[-1, 1]` out of band.
    fn beam_sin(&self, port: Port, f: f64) -> f64 {
        let m = self.cfg.harmonic as f64;
        let s = (self.cfg.feed_length - m * SPEED_OF_LIGHT / f) / self.cfg.spacing;
        match port {
            Port::A => s,
            Port::B => -s,
        }
    }

    /// Main-beam azimuth (radians) of `port` at frequency `f`, or `None`
    /// when the beam is not in visible space.
    pub fn beam_angle(&self, port: Port, f: f64) -> Option<f64> {
        let s = self.beam_sin(port, f);
        if s.abs() <= 1.0 {
            Some(s.asin())
        } else {
            None
        }
    }

    /// Inverse scan law: the frequency whose `port` beam points at azimuth
    /// `theta`. Returns `None` when no positive frequency satisfies the
    /// law.
    ///
    /// This is the frequency the AP must transmit so that the node's `port`
    /// beam faces it — the OAQFM carrier-selection primitive (paper §6.1).
    pub fn frequency_for_angle(&self, port: Port, theta: f64) -> Option<f64> {
        let m = self.cfg.harmonic as f64;
        let s = match port {
            Port::A => theta.sin(),
            Port::B => -theta.sin(),
        };
        let denom = self.cfg.feed_length - self.cfg.spacing * s;
        if denom <= 0.0 {
            return None;
        }
        Some(m * SPEED_OF_LIGHT / denom)
    }

    /// Complex array factor of `port` at azimuth `theta`, frequency `f`
    /// (un-normalized).
    fn array_factor(&self, port: Port, theta: f64, f: f64) -> Cpx {
        let k = 2.0 * PI * f / SPEED_OF_LIGHT;
        let beta_l = 2.0 * PI * f * self.cfg.feed_length / SPEED_OF_LIGHT;
        let psi = match port {
            Port::A => k * self.cfg.spacing * theta.sin() - beta_l,
            Port::B => k * self.cfg.spacing * theta.sin() + beta_l,
        };
        let mut af = Cpx::new(0.0, 0.0);
        for n in 0..self.cfg.n_elements {
            let a = (-self.cfg.feed_loss_neper * n as f64).exp();
            af += Cpx::from_polar(a, psi * n as f64);
        }
        af
    }

    /// Linear power gain of `port` at azimuth `theta`, frequency `f`.
    ///
    /// `G = η · Ge(θ) · |AF(θ,f)|² / Σa_n²` — the taper-aware array gain
    /// referenced so that the peak is `η·Ge·(Σa)²/Σa²`.
    pub fn gain(&self, port: Port, theta: f64, f: f64) -> f64 {
        let af = self.array_factor(port, theta, f).norm_sq();
        let sum_sq: f64 = (0..self.cfg.n_elements)
            .map(|n| (-2.0 * self.cfg.feed_loss_neper * n as f64).exp())
            .sum();
        let eff = dbi_to_linear(self.cfg.efficiency_db);
        eff * self.cfg.element.gain(theta, f) * af / sum_sq
    }

    /// Gain of `port` in dBi.
    pub fn gain_dbi(&self, port: Port, theta: f64, f: f64) -> f64 {
        linear_to_dbi(self.gain(port, theta, f))
    }

    /// Peak gain of `port` at frequency `f` (gain at the main-beam angle),
    /// in dBi. Returns the gain floor when the beam is invisible.
    pub fn peak_gain_dbi(&self, port: Port, f: f64) -> f64 {
        match self.beam_angle(port, f) {
            Some(t) => self.gain_dbi(port, t, f),
            None => f64::NEG_INFINITY,
        }
    }

    /// Approximate half-power beamwidth (radians) at frequency `f` from the
    /// classic aperture formula `0.886·λ/(N·d·cosθ_b)`.
    pub fn beamwidth(&self, port: Port, f: f64) -> Option<f64> {
        let theta_b = self.beam_angle(port, f)?;
        let lambda = SPEED_OF_LIGHT / f;
        let aperture = self.cfg.n_elements as f64 * self.cfg.spacing;
        Some(0.886 * lambda / (aperture * theta_b.cos()))
    }

    /// The degenerate "normal incidence" frequency where port A and port B
    /// beams coincide at θ = 0 (`f = m·c/L_e`). At this node orientation
    /// OAQFM collapses to single-tone OOK (paper §6.2).
    pub fn normal_frequency(&self) -> f64 {
        self.cfg.harmonic as f64 * SPEED_OF_LIGHT / self.cfg.feed_length
    }

    /// Total scan range (radians) covered as the frequency sweeps the
    /// design band, per port.
    pub fn scan_range(&self, port: Port) -> Option<(f64, f64)> {
        let a = self.beam_angle(port, self.cfg.f_lo)?;
        let b = self.beam_angle(port, self.cfg.f_hi)?;
        Some((a.min(b), a.max(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{deg_to_rad, rad_to_deg};

    fn fsa() -> DualPortFsa {
        DualPortFsa::milback()
    }

    #[test]
    fn design_hits_band_edges() {
        let f = fsa();
        let lo = f.beam_angle(Port::A, 26.5e9).unwrap();
        let hi = f.beam_angle(Port::A, 29.5e9).unwrap();
        assert!(
            (rad_to_deg(lo) + 30.0).abs() < 1e-9,
            "lo {}",
            rad_to_deg(lo)
        );
        assert!(
            (rad_to_deg(hi) - 30.0).abs() < 1e-9,
            "hi {}",
            rad_to_deg(hi)
        );
    }

    #[test]
    fn sixty_degree_coverage_with_3ghz() {
        let f = fsa();
        let (lo, hi) = f.scan_range(Port::A).unwrap();
        assert!(
            rad_to_deg(hi - lo) >= 59.9,
            "coverage {}",
            rad_to_deg(hi - lo)
        );
        assert!((f.config().f_hi - f.config().f_lo - 3e9).abs() < 1.0);
    }

    #[test]
    fn port_b_is_mirror_of_port_a() {
        let f = fsa();
        for ghz in [26.5, 27.0, 28.0, 29.0, 29.5] {
            let fa = f.beam_angle(Port::A, ghz * 1e9).unwrap();
            let fb = f.beam_angle(Port::B, ghz * 1e9).unwrap();
            assert!((fa + fb).abs() < 1e-12, "not mirrored at {ghz} GHz");
        }
    }

    #[test]
    fn scan_is_monotone_in_frequency() {
        let f = fsa();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=30 {
            let freq = 26.5e9 + i as f64 * 0.1e9;
            let t = f.beam_angle(Port::A, freq).unwrap();
            assert!(t > prev, "non-monotone at {freq}");
            prev = t;
        }
    }

    #[test]
    fn peak_gain_exceeds_10dbi_across_band() {
        // Paper §9.1: "more than 10 dB gain" across the FMCW band.
        let f = fsa();
        for i in 0..=30 {
            let freq = 26.5e9 + i as f64 * 0.1e9;
            for port in Port::BOTH {
                let g = f.peak_gain_dbi(port, freq);
                assert!(g > 10.0, "gain {g} dBi at {freq} Hz {port:?}");
                assert!(g < 15.0, "gain {g} dBi unrealistically high");
            }
        }
    }

    #[test]
    fn gain_drops_off_beam() {
        let f = fsa();
        let freq = 28e9;
        let beam = f.beam_angle(Port::A, freq).unwrap();
        let peak = f.gain_dbi(Port::A, beam, freq);
        let off = f.gain_dbi(Port::A, beam + deg_to_rad(15.0), freq);
        assert!(peak - off > 8.0, "peak {peak}, off {off}");
    }

    #[test]
    fn beamwidth_near_10_degrees() {
        // Paper §9.3: "the beam width of the node is around 10 degree".
        let f = fsa();
        let bw = rad_to_deg(f.beamwidth(Port::A, 28e9).unwrap());
        assert!((5.0..15.0).contains(&bw), "beamwidth {bw}°");
    }

    #[test]
    fn beamwidth_matches_pattern_minus_3db() {
        let f = fsa();
        let freq = 28e9;
        let beam = f.beam_angle(Port::A, freq).unwrap();
        let peak = f.gain_dbi(Port::A, beam, freq);
        let half_bw = f.beamwidth(Port::A, freq).unwrap() / 2.0;
        let edge = f.gain_dbi(Port::A, beam + half_bw, freq);
        assert!((peak - edge - 3.0).abs() < 1.5, "peak {peak} edge {edge}");
    }

    #[test]
    fn frequency_for_angle_inverts_beam_angle() {
        let f = fsa();
        for port in Port::BOTH {
            for deg in [-25.0, -10.0, 0.0, 5.0, 28.0] {
                let theta = deg_to_rad(deg);
                let freq = f.frequency_for_angle(port, theta).unwrap();
                let back = f.beam_angle(port, freq).unwrap();
                assert!(
                    (back - theta).abs() < 1e-9,
                    "{port:?} {deg}°: freq {freq} → {}",
                    rad_to_deg(back)
                );
            }
        }
    }

    #[test]
    fn tone_pair_for_orientation_is_distinct_off_normal() {
        let f = fsa();
        let theta = deg_to_rad(10.0);
        let fa = f.frequency_for_angle(Port::A, theta).unwrap();
        let fb = f.frequency_for_angle(Port::B, theta).unwrap();
        assert!((fa - fb).abs() > 100e6, "tones too close: {fa} {fb}");
    }

    #[test]
    fn normal_incidence_tones_coincide() {
        // Paper §6.2: at zero incidence f_A == f_B → OOK fallback.
        let f = fsa();
        let fa = f.frequency_for_angle(Port::A, 0.0).unwrap();
        let fb = f.frequency_for_angle(Port::B, 0.0).unwrap();
        assert!((fa - fb).abs() < 1.0);
        assert!((fa - f.normal_frequency()).abs() < 1.0);
        // And it sits inside the band.
        assert!(fa > 26.5e9 && fa < 29.5e9, "normal freq {fa}");
    }

    #[test]
    fn out_of_visible_space_beam_is_none() {
        let f = fsa();
        // Far below the band the required sinθ exceeds 1.
        assert!(f.beam_angle(Port::A, 20e9).is_none());
    }

    #[test]
    fn port_other_toggles() {
        assert_eq!(Port::A.other(), Port::B);
        assert_eq!(Port::B.other(), Port::A);
    }

    #[test]
    fn config_geometry_is_physical() {
        let cfg = FsaConfig::milback();
        // Spacing should be around half a wavelength at 28 GHz (10.7 mm).
        assert!(
            cfg.spacing > 3e-3 && cfg.spacing < 9e-3,
            "spacing {}",
            cfg.spacing
        );
        // Electrical length a few cm.
        assert!(cfg.feed_length > 0.02 && cfg.feed_length < 0.10);
    }
}
