//! 2-D geometry for the evaluation plane.
//!
//! The paper localizes nodes in a 2-D plane (distance + azimuth angle,
//! §9.2), so the scene model is planar. The AP sits at the origin facing
//! +x; angles are measured counter-clockwise from the +x axis in radians.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Wavelength in meters at frequency `f` Hz.
#[inline]
pub fn wavelength(f: f64) -> f64 {
    SPEED_OF_LIGHT / f
}

/// Converts degrees to radians.
#[inline]
pub fn deg_to_rad(d: f64) -> f64 {
    d * std::f64::consts::PI / 180.0
}

/// Converts radians to degrees.
#[inline]
pub fn rad_to_deg(r: f64) -> f64 {
    r * 180.0 / std::f64::consts::PI
}

/// Wraps an angle to `(-π, π]`.
pub fn wrap_angle(a: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut x = a % two_pi;
    if x <= -std::f64::consts::PI {
        x += two_pi;
    } else if x > std::f64::consts::PI {
        x -= two_pi;
    }
    x
}

/// A point in the 2-D evaluation plane (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate in meters.
    pub x: f64,
    /// y coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin.
    pub const fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// A point at distance `r` and azimuth `theta` (radians) from the
    /// origin.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            x: r * theta.cos(),
            y: r * theta.sin(),
        }
    }

    /// Euclidean distance to another point.
    pub fn distance_to(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Azimuth (radians) of the direction from `self` to `other`.
    pub fn bearing_to(&self, other: &Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }
}

/// Pose of a node: position plus the world-frame azimuth its FSA broadside
/// normal points toward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Position in the plane.
    pub position: Point,
    /// World-frame azimuth of the FSA broadside normal, radians.
    pub facing: f64,
}

impl Pose {
    /// Creates a pose.
    pub fn new(position: Point, facing: f64) -> Self {
        Self { position, facing }
    }

    /// Places a node at distance `r`, azimuth `phi` from the AP (origin),
    /// with FSA *orientation* `psi` relative to facing straight back at the
    /// AP. `psi = 0` means the node broadside points exactly at the AP.
    pub fn facing_ap(r: f64, phi: f64, psi: f64) -> Self {
        let position = Point::from_polar(r, phi);
        // Facing straight back at the AP means bearing position→origin.
        let to_ap = position.bearing_to(&Point::origin());
        Self {
            position,
            facing: wrap_angle(to_ap + psi),
        }
    }

    /// Incidence angle of a signal arriving from `source` onto the node's
    /// FSA, measured from the broadside normal (radians, signed).
    ///
    /// This is the paper's "orientation of the node with respect to the AP":
    /// the angle at which the FSA must form its beam to face the source.
    pub fn incidence_from(&self, source: &Point) -> f64 {
        let to_source = self.position.bearing_to(source);
        wrap_angle(to_source - self.facing)
    }
}

/// Round-trip time of flight for a monostatic radar at distance `d` meters.
#[inline]
pub fn round_trip_tof(d: f64) -> f64 {
    2.0 * d / SPEED_OF_LIGHT
}

/// One-way time of flight over distance `d` meters.
#[inline]
pub fn one_way_tof(d: f64) -> f64 {
    d / SPEED_OF_LIGHT
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn wavelength_at_28ghz() {
        let l = wavelength(28e9);
        assert!((l - 0.010707).abs() < 1e-5, "{l}");
    }

    #[test]
    fn angle_conversions() {
        assert!((deg_to_rad(180.0) - PI).abs() < 1e-12);
        assert!((rad_to_deg(PI / 4.0) - 45.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(0.1) - 0.1).abs() < 1e-15);
        assert!((wrap_angle(2.0 * PI)).abs() < 1e-12);
    }

    #[test]
    fn point_polar_round_trip() {
        let p = Point::from_polar(5.0, 0.3);
        assert!((p.distance_to(&Point::origin()) - 5.0).abs() < 1e-12);
        assert!((Point::origin().bearing_to(&p) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn distance_and_bearing() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert!((a.bearing_to(&b) - (4.0f64).atan2(3.0)).abs() < 1e-12);
        // Bearing is antisymmetric modulo π.
        assert!((wrap_angle(b.bearing_to(&a) - a.bearing_to(&b)) - PI).abs() < 1e-12);
    }

    #[test]
    fn pose_facing_ap_zero_orientation() {
        // Node straight ahead of the AP, facing back: incidence must be 0.
        let pose = Pose::facing_ap(2.0, 0.0, 0.0);
        assert!((pose.incidence_from(&Point::origin())).abs() < 1e-12);
        // Node off boresight but still facing the AP: incidence still 0.
        let pose = Pose::facing_ap(3.0, 0.4, 0.0);
        assert!((pose.incidence_from(&Point::origin())).abs() < 1e-12);
    }

    #[test]
    fn pose_orientation_equals_incidence() {
        for psi_deg in [-30.0, -10.0, 0.0, 15.0, 25.0] {
            let psi = deg_to_rad(psi_deg);
            let pose = Pose::facing_ap(4.0, 0.2, psi);
            // Rotating the node by ψ away from facing-the-AP makes the AP
            // appear at incidence −ψ in the node frame.
            let inc = pose.incidence_from(&Point::origin());
            assert!((inc + psi).abs() < 1e-12, "psi {psi_deg}: incidence {inc}");
        }
    }

    #[test]
    fn incidence_perpendicular() {
        let pose = Pose::new(Point::new(1.0, 0.0), FRAC_PI_2);
        // AP at origin is at bearing π from the node; facing is π/2 → π/2 off.
        let inc = pose.incidence_from(&Point::origin());
        assert!((inc - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn tof_round_trip() {
        let t = round_trip_tof(1.5);
        assert!((t - 1.0008e-8).abs() < 1e-11);
        assert!((one_way_tof(3.0) * 2.0 - round_trip_tof(3.0)).abs() < 1e-20);
    }
}
