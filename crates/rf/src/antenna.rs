//! Antenna gain models.
//!
//! The AP uses 20 dBi horn antennas (Mi-Wave 261, paper §8); the FSA's
//! radiating elements are microstrip patches. Gains are returned in linear
//! power units unless a function name says `_dbi`.

use crate::geometry::wrap_angle;

/// Converts dBi to linear gain.
#[inline]
pub fn dbi_to_linear(dbi: f64) -> f64 {
    10f64.powf(dbi / 10.0)
}

/// Converts linear gain to dBi.
#[inline]
pub fn linear_to_dbi(g: f64) -> f64 {
    10.0 * g.log10()
}

/// Directional antenna pattern evaluated over azimuth.
pub trait Antenna {
    /// Linear power gain at azimuth `theta` radians off boresight at RF
    /// frequency `f` Hz.
    fn gain(&self, theta: f64, f: f64) -> f64;

    /// Gain in dBi at `theta` / `f`.
    fn gain_dbi(&self, theta: f64, f: f64) -> f64 {
        linear_to_dbi(self.gain(theta, f))
    }
}

/// An isotropic radiator (0 dBi everywhere) — handy in tests and as a
/// clutter-scatterer receive pattern.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Isotropic;

impl Antenna for Isotropic {
    fn gain(&self, _theta: f64, _f: f64) -> f64 {
        1.0
    }
}

/// A parametric horn antenna: Gaussian main lobe with a constant side-lobe
/// floor.
///
/// The Gaussian beamwidth is tied to the peak gain through the standard
/// directivity approximation `G ≈ 4π / (Ω_az·Ω_el)`; for this planar model
/// we expose the azimuth half-power beamwidth directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Horn {
    /// Boresight gain in dBi.
    pub peak_dbi: f64,
    /// Azimuth half-power (−3 dB) beamwidth in radians.
    pub hpbw: f64,
    /// Side-lobe floor relative to peak, in dB (negative).
    pub sidelobe_db: f64,
}

impl Horn {
    /// The Mi-Wave 261-style 20 dBi horn used by MilBack's AP, with an
    /// ~18° half-power beamwidth and −25 dB side lobes.
    pub fn milback_ap() -> Self {
        Self {
            peak_dbi: 20.0,
            hpbw: 18f64.to_radians(),
            sidelobe_db: -25.0,
        }
    }
}

impl Antenna for Horn {
    fn gain(&self, theta: f64, _f: f64) -> f64 {
        let t = wrap_angle(theta);
        // Gaussian main lobe: −3 dB at ±hpbw/2.
        let main_db = -3.0 * (2.0 * t / self.hpbw).powi(2);
        let db = main_db.max(self.sidelobe_db);
        dbi_to_linear(self.peak_dbi + db)
    }
}

/// A microstrip patch element pattern: `cos^q(θ)` in power with a back-lobe
/// floor. Used as the element factor of the FSA array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatchElement {
    /// Boresight element gain in dBi (typical patch: 5–7 dBi).
    pub peak_dbi: f64,
    /// Power rolloff exponent `q` in `cos^q θ`.
    pub q: f64,
    /// Front-to-back floor relative to peak, dB (negative).
    pub floor_db: f64,
}

impl Default for PatchElement {
    fn default() -> Self {
        Self {
            peak_dbi: 6.0,
            q: 2.0,
            floor_db: -20.0,
        }
    }
}

impl Antenna for PatchElement {
    fn gain(&self, theta: f64, _f: f64) -> f64 {
        let t = wrap_angle(theta);
        let c = t.cos().max(0.0);
        let pattern = c.powf(self.q).max(dbi_to_linear(self.floor_db));
        dbi_to_linear(self.peak_dbi) * pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::deg_to_rad;

    #[test]
    fn db_conversions() {
        assert!((dbi_to_linear(20.0) - 100.0).abs() < 1e-9);
        assert!((linear_to_dbi(100.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn isotropic_is_flat() {
        let a = Isotropic;
        for t in [-3.0, -1.0, 0.0, 2.0] {
            assert_eq!(a.gain(t, 28e9), 1.0);
        }
    }

    #[test]
    fn horn_boresight_gain() {
        let h = Horn::milback_ap();
        assert!((h.gain_dbi(0.0, 28e9) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn horn_hpbw_is_minus_3db() {
        let h = Horn::milback_ap();
        let edge = h.gain_dbi(h.hpbw / 2.0, 28e9);
        assert!((edge - 17.0).abs() < 1e-9, "edge {edge}");
    }

    #[test]
    fn horn_sidelobe_floor() {
        let h = Horn::milback_ap();
        let far = h.gain_dbi(deg_to_rad(90.0), 28e9);
        assert!((far - (20.0 - 25.0)).abs() < 1e-9);
    }

    #[test]
    fn horn_symmetric() {
        let h = Horn::milback_ap();
        for t in [0.05, 0.1, 0.3] {
            assert!((h.gain(t, 28e9) - h.gain(-t, 28e9)).abs() < 1e-12);
        }
    }

    #[test]
    fn patch_boresight_and_rolloff() {
        let p = PatchElement::default();
        assert!((p.gain_dbi(0.0, 28e9) - 6.0).abs() < 1e-9);
        // cos²(60°) = 0.25 → −6 dB.
        let g = p.gain_dbi(deg_to_rad(60.0), 28e9);
        assert!((g - 0.0).abs() < 0.05, "{g}");
    }

    #[test]
    fn patch_back_hemisphere_clamped_to_floor() {
        let p = PatchElement::default();
        let g = p.gain_dbi(deg_to_rad(180.0), 28e9);
        assert!((g - (6.0 - 20.0)).abs() < 1e-9);
        let g = p.gain_dbi(deg_to_rad(120.0), 28e9);
        assert!((g - (6.0 - 20.0)).abs() < 1e-9);
    }
}
