//! Deterministic, seed-driven channel impairments (DESIGN.md §14).
//!
//! The paper's evaluation (and this repo's benchmarks up to PR 4) runs
//! on clean channels: static clutter, thermal noise, nothing else. Real
//! 28 GHz deployments are dominated by exactly the failures the clean
//! path never exercises — body blockage, burst interference, clock
//! drift, detector saturation (the surveys in PAPERS.md flag all four).
//! This module is the first-class fault model behind the repo's chaos
//! testing: a [`FaultPlan`] of scheduled [`FaultEvent`]s that the render
//! paths apply **post-synthesis**, after the cached channel response and
//! receiver noise, so the content-fingerprint caches of DESIGN.md §13
//! stay valid and an *empty* plan leaves every output bitwise identical
//! to the fault-free build.
//!
//! ## Determinism contract
//!
//! Fault application is a pure function of `(plan, site)` — the plan's
//! own seed plus stable indices (event index, chirp index, sample
//! index) drive an internal SplitMix64 stream, mirroring the
//! `milback::batch::derive_seed` discipline. No thread state, no shared
//! RNG, no allocation on the apply path: a chaos batch run is
//! thread-count-invariant, and serial == parallel holds under injected
//! faults (pinned by `tests/chaos.rs`).
//!
//! ## Timeline
//!
//! Events live on a per-exchange session clock, in seconds. The
//! protocol layer (`milback::session`) advances `Network::clock_s` as
//! fields render and as recovery backoff elapses, and each render hook
//! passes its absolute window. A 12 ms blockage therefore shadows
//! whatever the exchange is doing during those 12 ms — and a retry that
//! backs off past the end of the window genuinely recovers, which is
//! what makes the self-healing layer testable.
//!
//! ## Telemetry
//!
//! Every injected event application increments an `rf.fault.*` counter
//! (`blockage`, `interference`, `drift`, `saturation`, `drop`,
//! `corrupt`, `droop`). The counts depend only on the plan and the
//! exchange flow, so they survive `deterministic_view()` intact.

use milback_dsp::noise::db_to_ratio;
use milback_dsp::num::Cpx;
use milback_dsp::signal::Signal;
use milback_telemetry as telemetry;
use std::f64::consts::TAU;

// ---------------------------------------------------------------------
// Deterministic stream
// ---------------------------------------------------------------------

/// SplitMix64 stream for fault-local randomness. Deliberately private
/// and tiny: faults must never touch the simulation's `StdRng` (that
/// would break the empty-plan bitwise guarantee) nor any thread state
/// (that would break serial == parallel).
#[derive(Debug, Clone)]
struct Mix(u64);

impl Mix {
    /// Stream keyed by the plan seed and a stable site tag (event
    /// index, chirp index, …). Same finalizer as `batch::derive_seed`.
    fn at(seed: u64, tag: u64) -> Self {
        const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
        Mix(seed ^ tag.wrapping_mul(PHI))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard gaussian (Box–Muller; one draw per call, the sine twin
    /// is discarded to keep the stream position independent of call
    /// pairing).
    fn gaussian(&mut self) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
    }
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// What a scheduled fault does to the signal it overlaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Body blockage: attenuates the capture by `depth_db` (total
    /// observed depth — callers model two-way shadowing by choosing the
    /// depth accordingly) over the event window.
    Blockage {
        /// Attenuation depth applied to overlapped samples, dB.
        depth_db: f64,
    },
    /// Burst interference: an additive tone at `freq_offset_hz` from
    /// the capture's carrier, `amp` in capture units, with a
    /// deterministic random phase per event.
    Interference {
        /// Tone offset from the capture carrier, Hz.
        freq_offset_hz: f64,
        /// Tone amplitude at the receiver, linear.
        amp: f64,
    },
    /// Node clock drift: timing skew that grows linearly over the
    /// window at `ppm` parts-per-million, shifting chirp-slot alignment
    /// (applied as an envelope delay, like trigger jitter).
    ClockDrift {
        /// Drift rate, parts per million of elapsed window time.
        ppm: f64,
    },
    /// Envelope-detector saturation: clips video-domain samples to
    /// `±v_max` volts.
    Saturation {
        /// Clip level at the detector output, volts.
        v_max: f64,
    },
    /// Drops an entire chirp capture (RF front-end squelch): every
    /// sample of an overlapped chirp is zeroed.
    ChirpDrop,
    /// Corrupts an overlapped chirp with strong deterministic noise
    /// (`sigma` in capture units) — decodable as "present but
    /// garbage", unlike a drop.
    ChirpCorrupt {
        /// Corruption noise RMS per I/Q component, linear.
        sigma: f64,
    },
    /// SNR droop: extra wideband noise of `extra_noise_db` relative to
    /// the capture's RMS over the window (rain fade, LNA compression).
    SnrDroop {
        /// Extra noise level relative to capture RMS, dB.
        extra_noise_db: f64,
    },
}

/// One scheduled impairment: a [`FaultKind`] active over
/// `[start_s, start_s + duration_s)` on the session clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Window start on the session clock, seconds.
    pub start_s: f64,
    /// Window length, seconds.
    pub duration_s: f64,
    /// The impairment applied inside the window.
    pub kind: FaultKind,
}

impl FaultEvent {
    fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// Whether the window overlaps `[t0, t1)`.
    fn overlaps(&self, t0: f64, t1: f64) -> bool {
        self.start_s < t1 && t0 < self.end_s()
    }
}

/// A deterministic schedule of impairments for one packet exchange.
///
/// The default plan is empty: every render hook takes a single
/// `is_empty` branch and leaves the capture untouched — bitwise — so
/// fault support costs the clean path nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's deterministic noise streams.
    pub seed: u64,
    /// Scheduled events (order is irrelevant; application is by
    /// event-index-keyed streams, not schedule order).
    pub events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no events, no effect, zero overhead.
    pub fn none() -> Self {
        Self {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Whether the plan schedules any events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Samples a randomized chaos plan: `intensity` in `[0, 1]` scales
    /// how many and how severe the impairments are. Deterministic in
    /// `(seed, intensity, horizon_s)` — the chaos bench leg derives the
    /// seed per trial with `batch::derive_seed`, so a chaos sweep is
    /// reproducible to the byte.
    pub fn chaos(seed: u64, intensity: f64, horizon_s: f64) -> Self {
        let mut plan = Self::none();
        plan.chaos_into(seed, intensity, horizon_s);
        plan
    }

    /// In-place variant of [`FaultPlan::chaos`]: rebuilds this plan's
    /// schedule reusing the existing `events` allocation. The serving
    /// engine keeps one pooled plan per queue slot and re-rolls it per
    /// session, so the steady-state loop never allocates for faults.
    /// Produces a plan equal to `FaultPlan::chaos(seed, intensity,
    /// horizon_s)`.
    pub fn chaos_into(&mut self, seed: u64, intensity: f64, horizon_s: f64) {
        let intensity = intensity.clamp(0.0, 1.0);
        self.seed = seed;
        self.events.clear();
        let events = &mut self.events;
        if intensity > 0.0 {
            let mut rng = Mix::at(seed, 0x000C_4A05);
            // Blockage: up to three shadowing episodes.
            let n_block = (3.0 * intensity * rng.unit()).round() as usize;
            for _ in 0..n_block {
                events.push(FaultEvent {
                    start_s: rng.unit() * horizon_s,
                    duration_s: (0.05 + 0.3 * rng.unit()) * horizon_s,
                    kind: FaultKind::Blockage {
                        depth_db: 6.0 + 24.0 * intensity * rng.unit(),
                    },
                });
            }
            // One interference burst at moderate-to-high intensity.
            if intensity * rng.unit() > 0.25 {
                events.push(FaultEvent {
                    start_s: rng.unit() * horizon_s,
                    duration_s: (0.1 + 0.4 * rng.unit()) * horizon_s,
                    kind: FaultKind::Interference {
                        freq_offset_hz: (rng.unit() - 0.5) * 40e6,
                        amp: 1e-6 * (1.0 + 9.0 * intensity * rng.unit()),
                    },
                });
            }
            // Clock drift over the whole horizon.
            if intensity * rng.unit() > 0.3 {
                events.push(FaultEvent {
                    start_s: 0.0,
                    duration_s: horizon_s,
                    kind: FaultKind::ClockDrift {
                        ppm: 40.0 * intensity * rng.unit(),
                    },
                });
            }
            // Chirp loss/corruption somewhere in the exchange.
            if intensity * rng.unit() > 0.35 {
                let drop = rng.unit() < 0.5;
                events.push(FaultEvent {
                    start_s: rng.unit() * horizon_s,
                    duration_s: 0.02 * horizon_s,
                    kind: if drop {
                        FaultKind::ChirpDrop
                    } else {
                        FaultKind::ChirpCorrupt {
                            sigma: 1e-6 * (1.0 + 4.0 * intensity),
                        }
                    },
                });
            }
            // Broadband SNR droop at the tail of the intensity range.
            if intensity > 0.6 {
                events.push(FaultEvent {
                    start_s: rng.unit() * horizon_s,
                    duration_s: (0.2 + 0.3 * rng.unit()) * horizon_s,
                    kind: FaultKind::SnrDroop {
                        extra_noise_db: -20.0 + 14.0 * intensity,
                    },
                });
            }
        }
    }

    /// Applies every overlapping event to an RF-domain capture whose
    /// first sample sits at session time `t0_s`. `chirp_idx` tags the
    /// capture for per-chirp drop/corrupt streams (pass 0 for
    /// non-chirped captures).
    ///
    /// No-op (bitwise) when the plan is empty or nothing overlaps.
    pub fn apply_to_rx(&self, t0_s: f64, chirp_idx: usize, rx: &mut Signal) {
        if self.is_empty() || rx.is_empty() {
            return;
        }
        let t1_s = t0_s + rx.duration();
        let fs = rx.fs;
        for (ev_idx, ev) in self.events.iter().enumerate() {
            if !ev.overlaps(t0_s, t1_s) {
                continue;
            }
            // Sample range of the overlap within this capture.
            let lo = (((ev.start_s - t0_s) * fs).ceil().max(0.0)) as usize;
            let hi = ((((ev.end_s() - t0_s) * fs).ceil()).max(0.0) as usize).min(rx.len());
            if lo >= hi {
                continue;
            }
            match ev.kind {
                FaultKind::Blockage { depth_db } => {
                    telemetry::counter_add("rf.fault.blockage", 1);
                    let g = db_to_ratio(-depth_db.abs() / 2.0); // amplitude
                    for c in &mut rx.samples[lo..hi] {
                        *c *= g;
                    }
                }
                FaultKind::Interference {
                    freq_offset_hz,
                    amp,
                } => {
                    telemetry::counter_add("rf.fault.interference", 1);
                    let phase0 = Mix::at(self.seed, ev_idx as u64).unit() * TAU;
                    for (k, c) in rx.samples[lo..hi].iter_mut().enumerate() {
                        // Phase continuous in *session* time so the tone is
                        // coherent across chirps, like a real interferer.
                        let t = t0_s + (lo + k) as f64 / fs;
                        let ph = phase0 + TAU * freq_offset_hz * (t - ev.start_s);
                        *c += Cpx::cis(ph) * amp;
                    }
                }
                FaultKind::ClockDrift { ppm } => {
                    telemetry::counter_add("rf.fault.drift", 1);
                    // Skew at this capture's start, growing over the window.
                    let elapsed = (t0_s - ev.start_s).max(0.0);
                    let skew = ppm * 1e-6 * elapsed;
                    if skew > 0.0 {
                        rx.delay_in_place(skew);
                    }
                }
                FaultKind::Saturation { .. } => {
                    // Video-domain only; see apply_to_video.
                }
                FaultKind::ChirpDrop => {
                    telemetry::counter_add("rf.fault.drop", 1);
                    let _ = chirp_idx;
                    for c in &mut rx.samples {
                        *c = Cpx::new(0.0, 0.0);
                    }
                }
                FaultKind::ChirpCorrupt { sigma } => {
                    telemetry::counter_add("rf.fault.corrupt", 1);
                    let mut rng = Mix::at(
                        self.seed,
                        (ev_idx as u64) << 32 | chirp_idx as u64 | 0x10_0000,
                    );
                    for c in &mut rx.samples {
                        *c += Cpx::new(rng.gaussian() * sigma, rng.gaussian() * sigma);
                    }
                }
                FaultKind::SnrDroop { extra_noise_db } => {
                    telemetry::counter_add("rf.fault.droop", 1);
                    let rms = (rx.power()).sqrt();
                    let sigma = rms * db_to_ratio(extra_noise_db / 2.0) / 2f64.sqrt();
                    let mut rng = Mix::at(
                        self.seed,
                        (ev_idx as u64) << 32 | chirp_idx as u64 | 0x20_0000,
                    );
                    for c in &mut rx.samples[lo..hi] {
                        *c += Cpx::new(rng.gaussian() * sigma, rng.gaussian() * sigma);
                    }
                }
            }
        }
    }

    /// Applies overlapping events to a node-side video-domain capture
    /// (envelope-detector output) sampled at `fs` whose first sample
    /// sits at session time `t0_s`. Blockage scales power once
    /// (one-way AP→node path), saturation clips, droop adds noise;
    /// RF-only kinds are ignored.
    pub fn apply_to_video(&self, t0_s: f64, fs: f64, v: &mut [f64]) {
        if self.is_empty() || v.is_empty() {
            return;
        }
        let t1_s = t0_s + v.len() as f64 / fs;
        for (ev_idx, ev) in self.events.iter().enumerate() {
            if !ev.overlaps(t0_s, t1_s) {
                continue;
            }
            let lo = (((ev.start_s - t0_s) * fs).ceil().max(0.0)) as usize;
            let hi = ((((ev.end_s() - t0_s) * fs).ceil()).max(0.0) as usize).min(v.len());
            if lo >= hi {
                continue;
            }
            match ev.kind {
                FaultKind::Blockage { depth_db } => {
                    telemetry::counter_add("rf.fault.blockage", 1);
                    // Detector output ~ input power: one-way power depth.
                    let g = db_to_ratio(-depth_db.abs());
                    for s in &mut v[lo..hi] {
                        *s *= g;
                    }
                }
                FaultKind::Saturation { v_max } => {
                    telemetry::counter_add("rf.fault.saturation", 1);
                    for s in &mut v[lo..hi] {
                        *s = s.clamp(-v_max, v_max);
                    }
                }
                FaultKind::SnrDroop { extra_noise_db } => {
                    telemetry::counter_add("rf.fault.droop", 1);
                    let rms = (v.iter().map(|s| s * s).sum::<f64>() / v.len() as f64).sqrt();
                    let sigma = rms * db_to_ratio(extra_noise_db / 2.0);
                    let mut rng = Mix::at(self.seed, (ev_idx as u64) << 32 | 0x30_0000);
                    for s in &mut v[lo..hi] {
                        *s += rng.gaussian() * sigma;
                    }
                }
                FaultKind::ChirpDrop => {
                    telemetry::counter_add("rf.fault.drop", 1);
                    for s in &mut v[lo..hi] {
                        *s = 0.0;
                    }
                }
                FaultKind::Interference { .. }
                | FaultKind::ClockDrift { .. }
                | FaultKind::ChirpCorrupt { .. } => {}
            }
        }
    }

    /// Additional envelope delay from clock-drift events at session
    /// time `t_s` (0 when none are active). Render paths add this to
    /// their trigger-jitter delay.
    pub fn timing_skew(&self, t_s: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut skew = 0.0;
        for ev in &self.events {
            if let FaultKind::ClockDrift { ppm } = ev.kind {
                if t_s >= ev.start_s && t_s < ev.end_s() {
                    skew += ppm * 1e-6 * (t_s - ev.start_s);
                }
            }
        }
        skew
    }

    /// Fingerprint of the plan (for diagnostics / dedup in reports).
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::workspace::Fnv::new();
        h.word(self.seed);
        h.word(self.events.len() as u64);
        for ev in &self.events {
            h.f64(ev.start_s);
            h.f64(ev.duration_s);
            match ev.kind {
                FaultKind::Blockage { depth_db } => {
                    h.word(1);
                    h.f64(depth_db);
                }
                FaultKind::Interference {
                    freq_offset_hz,
                    amp,
                } => {
                    h.word(2);
                    h.f64(freq_offset_hz);
                    h.f64(amp);
                }
                FaultKind::ClockDrift { ppm } => {
                    h.word(3);
                    h.f64(ppm);
                }
                FaultKind::Saturation { v_max } => {
                    h.word(4);
                    h.f64(v_max);
                }
                FaultKind::ChirpDrop => h.word(5),
                FaultKind::ChirpCorrupt { sigma } => {
                    h.word(6);
                    h.f64(sigma);
                }
                FaultKind::SnrDroop { extra_noise_db } => {
                    h.word(7);
                    h.f64(extra_noise_db);
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture() -> Signal {
        Signal::tone(1e8, 28e9, 1e6, 1.0, 512)
    }

    #[test]
    fn empty_plan_is_bitwise_noop() {
        let plan = FaultPlan::none();
        let mut rx = capture();
        let before = rx.samples.clone();
        plan.apply_to_rx(0.0, 0, &mut rx);
        assert_eq!(rx.samples, before);
        let mut v = vec![0.5; 64];
        plan.apply_to_video(0.0, 1e6, &mut v);
        assert_eq!(v, vec![0.5; 64]);
        assert_eq!(plan.timing_skew(1.0), 0.0);
    }

    #[test]
    fn blockage_attenuates_only_the_window() {
        let mut rx = capture();
        let before = rx.samples.clone();
        let dur = rx.duration();
        let plan = FaultPlan {
            seed: 1,
            events: vec![FaultEvent {
                start_s: dur * 0.25,
                duration_s: dur * 0.5,
                kind: FaultKind::Blockage { depth_db: 20.0 },
            }],
        };
        plan.apply_to_rx(0.0, 0, &mut rx);
        let n = rx.len();
        // Outside the window: untouched.
        assert_eq!(rx.samples[0], before[0]);
        assert_eq!(rx.samples[n - 1], before[n - 1]);
        // Inside: 20 dB power depth = 10x amplitude.
        let mid = n / 2;
        let ratio = before[mid].norm_sq() / rx.samples[mid].norm_sq();
        assert!((ratio - 100.0).abs() < 1.0, "power ratio {ratio}");
    }

    #[test]
    fn application_is_deterministic() {
        let plan = FaultPlan::chaos(42, 0.8, 0.01);
        assert!(!plan.is_empty());
        let mut a = capture();
        let mut b = capture();
        plan.apply_to_rx(1e-3, 2, &mut a);
        plan.apply_to_rx(1e-3, 2, &mut b);
        assert_eq!(a.samples, b.samples, "same site must inject identically");
        // A different chirp index gets a different corruption stream but
        // still deterministic.
        let mut c = capture();
        plan.apply_to_rx(1e-3, 3, &mut c);
        let mut d = capture();
        plan.apply_to_rx(1e-3, 3, &mut d);
        assert_eq!(c.samples, d.samples);
    }

    #[test]
    fn chaos_plans_reproduce_and_scale() {
        assert_eq!(
            FaultPlan::chaos(7, 0.5, 0.01),
            FaultPlan::chaos(7, 0.5, 0.01)
        );
        assert!(FaultPlan::chaos(7, 0.0, 0.01).is_empty());
        assert_ne!(
            FaultPlan::chaos(7, 0.9, 0.01),
            FaultPlan::chaos(8, 0.9, 0.01)
        );
    }

    #[test]
    fn chaos_into_matches_chaos_and_reuses_capacity() {
        let mut plan = FaultPlan::chaos(11, 0.9, 0.02);
        let cap = plan.events.capacity();
        plan.chaos_into(12, 0.4, 0.01);
        assert_eq!(plan, FaultPlan::chaos(12, 0.4, 0.01));
        assert!(plan.events.capacity() >= plan.events.len());
        // Re-rolling to a smaller (or empty) schedule keeps the buffer.
        plan.chaos_into(13, 0.0, 0.01);
        assert!(plan.is_empty());
        assert_eq!(plan.events.capacity(), cap.max(plan.events.capacity()));
        plan.chaos_into(11, 0.9, 0.02);
        assert_eq!(plan, FaultPlan::chaos(11, 0.9, 0.02));
    }

    #[test]
    fn drop_zeroes_and_saturation_clips() {
        let dur = capture().duration();
        let drop = FaultPlan {
            seed: 3,
            events: vec![FaultEvent {
                start_s: 0.0,
                duration_s: dur,
                kind: FaultKind::ChirpDrop,
            }],
        };
        let mut rx = capture();
        drop.apply_to_rx(0.0, 0, &mut rx);
        assert!(rx.samples.iter().all(|c| c.norm_sq() == 0.0));
        let sat = FaultPlan {
            seed: 3,
            events: vec![FaultEvent {
                start_s: 0.0,
                duration_s: 1.0,
                kind: FaultKind::Saturation { v_max: 0.2 },
            }],
        };
        let mut v = vec![-1.0, -0.1, 0.05, 0.9];
        sat.apply_to_video(0.0, 1e6, &mut v);
        assert_eq!(v, vec![-0.2, -0.1, 0.05, 0.2]);
    }

    #[test]
    fn drift_skew_grows_inside_window() {
        let plan = FaultPlan {
            seed: 9,
            events: vec![FaultEvent {
                start_s: 1.0,
                duration_s: 2.0,
                kind: FaultKind::ClockDrift { ppm: 50.0 },
            }],
        };
        assert_eq!(plan.timing_skew(0.5), 0.0);
        let early = plan.timing_skew(1.5);
        let late = plan.timing_skew(2.9);
        assert!(early > 0.0 && late > early, "{early} {late}");
        assert_eq!(plan.timing_skew(3.5), 0.0);
    }

    #[test]
    fn fingerprint_separates_plans() {
        let a = FaultPlan::chaos(1, 0.7, 0.01);
        let b = FaultPlan::chaos(2, 0.7, 0.01);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }
}
