//! # milback-rf
//!
//! RF substrate for the MilBack reproduction: everything between the AP's
//! waveform generator and the node's envelope detectors.
//!
//! * [`geometry`] — the 2-D evaluation plane, poses and time-of-flight,
//! * [`antenna`] — horn / patch / isotropic gain patterns,
//! * [`fsa`] — the dual-port Frequency Scanning Antenna (the paper's core
//!   passive structure),
//! * [`propagation`] — Friis / radar-equation link budgets,
//! * [`channel`] — the discrete-ray scene: node backscatter, clutter,
//!   mirror reflection and self-interference,
//! * [`frontend`] — AP front-end models (LNA, mixer, baseband BPF),
//! * [`room`] — parametric indoor-room clutter scenes.

pub mod antenna;
pub mod channel;
pub mod frontend;
pub mod fsa;
pub mod geometry;
pub mod propagation;
pub mod room;

pub use channel::{Scene, TxComponent};
pub use fsa::{DualPortFsa, FsaConfig, Port};
pub use geometry::{Point, Pose};
pub use room::Room;
