//! # milback-rf
//!
//! RF substrate for the MilBack reproduction: everything between the AP's
//! waveform generator and the node's envelope detectors.
//!
//! * [`geometry`] — the 2-D evaluation plane, poses and time-of-flight,
//! * [`antenna`] — horn / patch / isotropic gain patterns,
//! * [`fsa`] — the dual-port Frequency Scanning Antenna (the paper's core
//!   passive structure),
//! * [`propagation`] — Friis / radar-equation link budgets,
//! * [`channel`] — the discrete-ray scene: node backscatter, clutter,
//!   mirror reflection and self-interference,
//! * [`frontend`] — AP front-end models (LNA, mixer, baseband BPF),
//! * [`room`] — parametric indoor-room clutter scenes,
//! * [`faults`] — deterministic scheduled impairments (blockage,
//!   interference, clock drift, saturation, chirp loss) for chaos
//!   testing.
//!
//! ## Place in the paper's architecture
//!
//! §4 of the paper is the dual-port FSA design this crate models in
//! [`fsa`]: a leaky-wave antenna whose beam angle is a function of
//! frequency, terminated at both ports by switches so the node can
//! either retro-reflect or modulate. [`propagation`] carries the §9.1
//! link budget (the 1/R⁴ backscatter radar equation), [`channel`]
//! injects the clutter and self-interference that §5.1's background
//! subtraction exists to remove, and [`geometry`]/[`room`] define the
//! evaluation scenes behind Figures 12–15.
//!
//! This crate is pure physics with one observability exception: the
//! [`workspace`] channel-synthesis caches report their hit/miss/grow
//! counters (all `.local`-suffixed, per-thread) so the static-scene
//! response cache of DESIGN.md §13 can be audited. Stage counters for
//! the processing pipeline live in the layers that call this crate
//! (`milback-ap`, `milback-node`, `milback` core).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod antenna;
pub mod channel;
pub mod faults;
pub mod frontend;
pub mod fsa;
pub mod geometry;
pub mod propagation;
pub mod room;
pub mod workspace;

pub use channel::{Scene, TxComponent};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use fsa::{DualPortFsa, FsaConfig, Port};
pub use geometry::{Point, Pose};
pub use room::Room;
pub use workspace::{wave_fingerprint, with_channel_workspace, ChannelWorkspace};
