//! AP RF front-end component models: LNA, mixer and the band-pass filter
//! chain of the paper's Figure 7.
//!
//! The chain per RX antenna is: antenna → LNA → mixer (×query tone) → BPF →
//! baseband capture. The models are deliberately simple — gain, noise
//! figure, conversion loss — because those are the only parameters that
//! enter the link budget; the interesting behaviour (interference
//! rejection) comes from the mixer/BPF arithmetic, which is exact.

use milback_dsp::filter::Fir;
use milback_dsp::noise::{add_awgn, thermal_noise_power};
use milback_dsp::num::Cpx;
use milback_dsp::signal::Signal;
use rand::Rng;

/// Low-noise amplifier (ADL8142-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lna {
    /// Power gain in dB.
    pub gain_db: f64,
    /// Noise figure in dB.
    pub nf_db: f64,
}

impl Lna {
    /// The ADL8142-style LNA used in MilBack's AP: 20 dB gain, 3 dB NF.
    pub fn milback() -> Self {
        Self {
            gain_db: 20.0,
            nf_db: 3.0,
        }
    }

    /// Amplifies the signal in place and adds the LNA's referred-to-input
    /// thermal noise over bandwidth `bw` Hz.
    pub fn apply<R: Rng + ?Sized>(&self, sig: &mut Signal, bw: f64, rng: &mut R) {
        // Noise added at the input, then everything amplified.
        let n_in = thermal_noise_power(bw, self.nf_db);
        add_awgn(sig, n_in, rng);
        sig.scale_db(self.gain_db);
    }

    /// Equivalent input noise power (watts) over bandwidth `bw`.
    pub fn input_noise_power(&self, bw: f64) -> f64 {
        thermal_noise_power(bw, self.nf_db)
    }
}

/// Ideal multiplying mixer with conversion loss (ZMDB-44H-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mixer {
    /// Conversion loss in dB (positive).
    pub conversion_loss_db: f64,
}

impl Mixer {
    /// The Mini-Circuits ZMDB-44H-style mixer: 7 dB conversion loss.
    pub fn milback() -> Self {
        Self {
            conversion_loss_db: 7.0,
        }
    }

    /// Mixes `rf` with the conjugate of the local-oscillator reference
    /// `lo` (down-conversion): output `rf·lo*·loss`. Both signals must be
    /// at the same sample rate.
    pub fn downconvert(&self, rf: &Signal, lo: &Signal) -> Signal {
        let mut out = rf.conj_multiply(lo);
        out.scale_db(-self.conversion_loss_db);
        out
    }

    /// [`Mixer::downconvert`] in place: `rf[i] *= lo[i]*`, truncated to
    /// the shorter length, then the conversion loss — bitwise identical
    /// to the allocating form, for pooled receive chains.
    pub fn downconvert_in_place(&self, rf: &mut Signal, lo: &[Cpx]) {
        let n = rf.len().min(lo.len());
        rf.samples.truncate(n);
        for (s, l) in rf.samples.iter_mut().zip(lo) {
            *s *= l.conj();
        }
        rf.scale_db(-self.conversion_loss_db);
    }
}

/// The AP's baseband band-pass filter (ZFHP-0R50-S+ / ZFHP-0R23-S+ pair in
/// the paper): passes the node's modulation sidebands, rejects DC clutter
/// and high mixing images.
#[derive(Debug, Clone, PartialEq)]
pub struct BasebandBpf {
    fir: Fir,
    f_lo: f64,
    f_hi: f64,
}

impl BasebandBpf {
    /// Builds a band-pass for modulation content between `f_lo` and `f_hi`
    /// Hz at sample rate `fs`.
    pub fn new(f_lo: f64, f_hi: f64, fs: f64) -> Self {
        Self {
            fir: Fir::bandpass(f_lo, f_hi, fs, 127),
            f_lo,
            f_hi,
        }
    }

    /// Passband edges (Hz).
    pub fn band(&self) -> (f64, f64) {
        (self.f_lo, self.f_hi)
    }

    /// Noise bandwidth of the passband (Hz).
    pub fn noise_bandwidth(&self) -> f64 {
        self.f_hi - self.f_lo
    }

    /// Filters the baseband signal.
    pub fn apply(&self, sig: &Signal) -> Signal {
        Signal::new(sig.fs, sig.fc, self.fir.apply(&sig.samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lna_gain_and_noise() {
        let lna = Lna::milback();
        let mut rng = StdRng::seed_from_u64(1);
        let mut sig = Signal::tone(1e6, 28e9, 0.0, 1e-3, 20_000);
        let p_in = sig.power();
        lna.apply(&mut sig, 1e6, &mut rng);
        let p_out = sig.power();
        // Signal dominates this noise level: output ≈ input × 100.
        assert!(
            (p_out / p_in - 100.0).abs() < 1.0,
            "gain ratio {}",
            p_out / p_in
        );
    }

    #[test]
    fn lna_noise_floor_alone() {
        let lna = Lna::milback();
        let mut rng = StdRng::seed_from_u64(2);
        let mut sig = Signal::zeros(1e6, 28e9, 100_000);
        lna.apply(&mut sig, 1e6, &mut rng);
        let expected = lna.input_noise_power(1e6) * 100.0; // ×gain
        assert!((sig.power() / expected - 1.0).abs() < 0.05);
    }

    #[test]
    fn mixer_shifts_tone_to_baseband() {
        let fs = 1e6;
        let rf = Signal::tone(fs, 28e9, 120e3, 1.0, 4096);
        let lo = Signal::tone(fs, 28e9, 100e3, 1.0, 4096);
        let out = Mixer::milback().downconvert(&rf, &lo);
        // Output should be a 20 kHz tone with −7 dB power.
        let spec = milback_dsp::fft::power_spectrum(&out.samples);
        let freqs = milback_dsp::fft::fft_freqs(4096, fs);
        let peak = milback_dsp::detect::argmax(&spec).unwrap();
        assert!((freqs[peak] - 20e3).abs() <= fs / 4096.0);
        assert!((10.0 * out.power().log10() + 7.0).abs() < 0.1);
    }

    #[test]
    fn bpf_rejects_dc_keeps_band() {
        let fs = 1e6;
        let bpf = BasebandBpf::new(20e3, 200e3, fs);
        let mut sig = Signal::tone(fs, 0.0, 0.0, 100.0, 4000); // huge DC
        sig.add(&Signal::tone(fs, 0.0, 100e3, 1.0, 4000));
        let out = bpf.apply(&sig);
        let p: f64 = out.samples[1000..3000]
            .iter()
            .map(|c| c.norm_sq())
            .sum::<f64>()
            / 2000.0;
        assert!((p - 1.0).abs() < 0.2, "band power {p}");
        assert_eq!(bpf.noise_bandwidth(), 180e3);
        assert_eq!(bpf.band(), (20e3, 200e3));
    }
}
