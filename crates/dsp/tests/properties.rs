//! Property-based tests of the DSP substrate's invariants.

use milback_dsp::chirp::ChirpConfig;
use milback_dsp::fft::{fft, fft_shift, ifft};
use milback_dsp::filter::{Biquad, Fir, OnePole};
use milback_dsp::goertzel::goertzel;
use milback_dsp::num::Cpx;
use milback_dsp::signal::Signal;
use milback_dsp::stats;
use milback_dsp::window::Window;
use milback_dsp::xcorr::{correlation_coefficient, xcorr};
use proptest::prelude::*;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<Cpx>> {
    proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Cpx::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trip_arbitrary_length(x in arb_signal(200)) {
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_holds(x in arb_signal(128)) {
        let y = fft(&x);
        let et: f64 = x.iter().map(|c| c.norm_sq()).sum();
        let ef: f64 = y.iter().map(|c| c.norm_sq()).sum::<f64>() / x.len() as f64;
        prop_assert!((et - ef).abs() < 1e-6 * (et + 1.0));
    }

    #[test]
    fn fft_shift_is_involution_for_even_lengths(n in 1usize..64) {
        let data: Vec<usize> = (0..2 * n).collect();
        let twice = fft_shift(&fft_shift(&data));
        prop_assert_eq!(twice, data);
    }

    #[test]
    fn goertzel_matches_full_fft(k in 0usize..32, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Cpx> = (0..32)
            .map(|_| Cpx::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let spec = fft(&x);
        let g = goertzel(&x, k as f64 / 32.0 * 1.0, 1.0);
        prop_assert!((g - spec[k]).abs() < 1e-6 * (spec[k].abs() + 1.0));
    }

    #[test]
    fn windows_never_exceed_unity(n in 2usize..256, kind in 0usize..5) {
        let w = [Window::Rect, Window::Hann, Window::Hamming, Window::Blackman, Window::BlackmanHarris][kind];
        for v in w.generate(n) {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn one_pole_is_bibo_stable(f3db in 1e3f64..1e8, input in proptest::collection::vec(-5.0f64..5.0, 1..200)) {
        let mut lp = OnePole::new(f3db, 1e9);
        let out = lp.run(&input);
        let bound = input.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        for v in out {
            prop_assert!(v.abs() <= bound + 1e-9);
        }
    }

    #[test]
    fn biquad_lowpass_impulse_decays(f0 in 100.0f64..20e3) {
        let b = Biquad::lowpass(f0, 48e3);
        let mut imp = vec![0.0; 50_000];
        imp[0] = 1.0;
        let y = b.apply_real(&imp);
        prop_assert!(y[49_999].abs() < 1e-3);
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fir_lowpass_dc_gain_is_unity(cutoff_frac in 0.01f64..0.45, taps in 2usize..40) {
        let fs = 1e6;
        let f = Fir::lowpass(cutoff_frac * fs, fs, 2 * taps + 1);
        prop_assert!((f.response_at(0.0, fs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn xcorr_zero_lag_is_inner_product(x in arb_signal(64)) {
        let (lags, r) = xcorr(&x, &x);
        let zero_idx = lags.iter().position(|&l| l == 0).unwrap();
        let energy: f64 = x.iter().map(|c| c.norm_sq()).sum();
        prop_assert!((r[zero_idx] - Cpx::new(energy, 0.0)).abs() < 1e-6 * (energy + 1.0));
    }

    #[test]
    fn correlation_coefficient_bounded(x in arb_signal(64), y in arb_signal(64)) {
        let n = x.len().min(y.len());
        let c = correlation_coefficient(&x[..n], &y[..n]);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn percentile_is_monotone(data in proptest::collection::vec(-100.0f64..100.0, 1..100), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(stats::percentile(&data, lo) <= stats::percentile(&data, hi) + 1e-12);
    }

    #[test]
    fn signal_delay_preserves_energy_roughly(
        f_off in -1e5f64..1e5,
        n_delay in 0usize..20,
    ) {
        // An integer-delay of a tone loses only the zero-filled prefix.
        let fs = 1e6;
        let n = 256;
        let s = Signal::tone(fs, 0.0, f_off, 1.0, n);
        let d = s.delayed(n_delay as f64 / fs);
        let kept: f64 = d.samples[n_delay..].iter().map(|c| c.norm_sq()).sum();
        prop_assert!((kept - (n - n_delay) as f64).abs() < 1.0);
    }

    #[test]
    fn chirp_power_is_amplitude_squared(amp in 0.1f64..5.0, dur_us in 1.0f64..4.0) {
        let cfg = ChirpConfig {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: dur_us * 1e-6,
            fs: 3.2e9,
            amplitude: amp,
        };
        prop_assert!((cfg.sawtooth().power() - amp * amp).abs() < 1e-9 * amp * amp);
        prop_assert!((cfg.triangular().power() - amp * amp).abs() < 1e-9 * amp * amp);
    }

    #[test]
    fn triangular_crossings_are_ordered(f_ghz in 26.5f64..29.5) {
        let cfg = ChirpConfig::milback_triangular();
        if let Some((t1, t2)) = cfg.triangular_crossings(f_ghz * 1e9) {
            prop_assert!(t1 <= t2);
            prop_assert!(t1 >= 0.0 && t2 <= cfg.duration);
        }
    }
}
