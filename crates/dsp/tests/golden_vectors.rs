//! Golden-vector regression tests for the DSP substrate.
//!
//! Each test pins a transform against an independent reference: a
//! closed-form spectrum, a naive O(n²) DFT, or the single-bin Goertzel
//! recurrence. These are the cross-checks that guard the planned-FFT
//! refactor — if the plan cache, Bluestein path, or twiddle tables ever
//! drift, one of these fails before any experiment-level test notices.

use milback_dsp::fft::{fft, fft_pow2_in_place, ifft, ifft_pow2_in_place};
use milback_dsp::goertzel::goertzel;
use milback_dsp::num::{Cpx, ZERO};
use milback_dsp::plan::{with_plan, FftPlan};
use std::f64::consts::PI;

/// Reference O(n²) DFT, straight from the definition.
fn naive_dft(input: &[Cpx]) -> Vec<Cpx> {
    let n = input.len();
    (0..n)
        .map(|k| {
            input
                .iter()
                .enumerate()
                .map(|(m, &x)| x * Cpx::cis(-2.0 * PI * (k * m) as f64 / n as f64))
                .fold(ZERO, |a, b| a + b)
        })
        .collect()
}

/// A deterministic pseudo-random test vector (no RNG dependency needed:
/// a fixed irrational-stride phase walk covers the spectrum densely).
fn test_vector(n: usize) -> Vec<Cpx> {
    (0..n)
        .map(|i| Cpx::cis(i as f64 * 0.7548776662) * (1.0 + 0.5 * (i as f64 * 0.1).sin()))
        .collect()
}

#[test]
fn impulse_transforms_to_flat_spectrum() {
    // δ[0] → X[k] = 1 for all k, exactly.
    for n in [8usize, 16, 64, 100, 255] {
        let mut x = vec![ZERO; n];
        x[0] = Cpx::new(1.0, 0.0);
        for v in fft(&x) {
            assert!((v - Cpx::new(1.0, 0.0)).abs() < 1e-9, "n={n}");
        }
    }
}

#[test]
fn single_tone_lands_in_one_bin() {
    // x[m] = e^{j2πkm/n} → X[k] = n, all other bins zero.
    let n = 128;
    let k = 17;
    let x: Vec<Cpx> = (0..n)
        .map(|m| Cpx::cis(2.0 * PI * (k * m) as f64 / n as f64))
        .collect();
    let spec = fft(&x);
    for (bin, v) in spec.iter().enumerate() {
        let expect = if bin == k { n as f64 } else { 0.0 };
        assert!(
            (v.abs() - expect).abs() < 1e-8,
            "bin {bin}: |X| = {}",
            v.abs()
        );
    }
}

#[test]
fn fft_matches_naive_dft() {
    // Power-of-two (radix-2 path) and composite/prime (Bluestein path).
    for n in [2usize, 8, 32, 64, 12, 15, 17, 31, 100] {
        let x = test_vector(n);
        let fast = fft(&x);
        let slow = naive_dft(&x);
        let scale: f64 = slow.iter().map(|c| c.abs()).fold(1.0, f64::max);
        for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!(
                (*a - *b).abs() < 1e-9 * scale,
                "n={n} bin {k}: fft {a:?} vs dft {b:?}"
            );
        }
    }
}

#[test]
fn ifft_round_trips_fft() {
    for n in [1usize, 2, 16, 64, 21, 97, 256] {
        let x = test_vector(n);
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-9, "n={n}");
        }
    }
}

#[test]
fn in_place_round_trip_is_near_exact() {
    let x = test_vector(1024);
    let mut buf = x.clone();
    fft_pow2_in_place(&mut buf);
    ifft_pow2_in_place(&mut buf);
    for (a, b) in x.iter().zip(&buf) {
        assert!((*a - *b).abs() < 1e-10);
    }
}

#[test]
fn goertzel_matches_fft_bins() {
    let n = 256;
    let x = test_vector(n);
    let spec = fft(&x);
    for k in [0usize, 1, 7, 64, 128, 200, 255] {
        let g = goertzel(&x, k as f64 / n as f64, 1.0);
        assert!(
            (g - spec[k]).abs() < 1e-6 * (spec[k].abs() + 1.0),
            "bin {k}: goertzel {g:?} vs fft {:?}",
            spec[k]
        );
    }
}

#[test]
fn planned_and_unplanned_transforms_are_bitwise_identical() {
    // The free functions are wrappers over the cached plans, and a fresh
    // plan computes the same tables — results must match to the bit.
    for n in [8usize, 64, 1024] {
        let x = test_vector(n);
        let via_free = fft(&x);
        let via_cache = with_plan(n, |p| p.forward(&x));
        let via_fresh = FftPlan::new(n).forward(&x);
        assert_eq!(via_free, via_cache, "n={n}: free fn vs cached plan");
        assert_eq!(via_cache, via_fresh, "n={n}: cached vs fresh plan");
    }
    // Bluestein path: the free fft() and a repeat call (warm cache) agree.
    for n in [12usize, 17, 100] {
        let x = test_vector(n);
        let first = fft(&x);
        let second = fft(&x);
        assert_eq!(first, second, "n={n}: cold vs warm Bluestein cache");
    }
}

#[test]
fn linearity_golden_check() {
    // FFT(a·x + b·y) == a·FFT(x) + b·FFT(y), to rounding.
    let n = 96; // composite → Bluestein
    let x = test_vector(n);
    let y: Vec<Cpx> = (0..n).map(|i| Cpx::cis(-(i as f64) * 0.31)).collect();
    let (a, b) = (Cpx::new(2.0, -1.0), Cpx::new(0.5, 0.25));
    let mixed: Vec<Cpx> = x.iter().zip(&y).map(|(&u, &v)| u * a + v * b).collect();
    let lhs = fft(&mixed);
    let fx = fft(&x);
    let fy = fft(&y);
    for (k, l) in lhs.iter().enumerate() {
        let r = fx[k] * a + fy[k] * b;
        assert!((*l - r).abs() < 1e-8, "bin {k}");
    }
}
