//! Phasor-recurrence evaluation of uniformly rotating carriers.
//!
//! Sample loops of the form `out[i] = amp · exp(j(φ₀ + i·Δφ))` appear in
//! every waveform generator (tones, OOK/ASK envelopes, OAQFM symbols) and
//! historically called [`Cpx::from_polar`] — two transcendental evaluations
//! — per sample. Because the phase advances by a *constant* `Δφ` each
//! sample, the whole sequence is a geometric series in the complex plane:
//!
//! ```text
//! z[0]   = amp·exp(jφ₀)
//! z[i+1] = z[i] · exp(jΔφ)        (one complex multiply per sample)
//! ```
//!
//! A bare recurrence drifts: each multiply commits a rounding error of a
//! few ULP in both magnitude and phase, and the errors compound linearly
//! with the run length. We bound the drift by re-anchoring with an exact
//! [`Cpx::from_polar`] every [`CHECKPOINT`] samples, so anchor samples
//! (`i % CHECKPOINT == 0`) are **bitwise identical** to the direct
//! evaluation and every sample in between carries at most `CHECKPOINT`
//! accumulated multiply roundings.
//!
//! ## Error bound
//!
//! One recurrence step costs a handful of ULP of relative error: √5·ε
//! from the complex multiply plus the rounding of `exp(jΔφ)` itself,
//! whose phase error also walks the result around the circle
//! (ε = f64 machine epsilon). Between anchors at most `CHECKPOINT − 1 = 63`
//! steps compound; the measured worst case across sweep configurations
//! is ≈ 1×10⁻¹³·amp (≈ 450ε, i.e. ~7ε per step), so every emitted
//! sample satisfies
//!
//! ```text
//! |z_rec[i] − z_exact[i]| < 4×10⁻¹³ · amp
//! ```
//!
//! with 4× margin. That figure is the bound documented in DESIGN.md §13
//! and pinned by the unit tests — far below the thermal-noise floors and
//! detection tolerances anywhere in the simulation. Callers that need
//! exact values at specific indices can rely on the anchor-sample
//! guarantee.

use crate::num::Cpx;

/// Samples between exact [`Cpx::from_polar`] re-anchors. Anchor samples
/// are bitwise equal to direct evaluation; see the module docs for the
/// inter-anchor error bound.
pub const CHECKPOINT: usize = 64;

/// Calls `f(i, amp·exp(j(φ₀ + i·Δφ)))` for `i ∈ [0, n)`, evaluating the
/// rotation by phasor recurrence with periodic exact re-anchoring.
///
/// Samples where `i % CHECKPOINT == 0` are computed as
/// `Cpx::from_polar(amp, phi0 + dphi * i as f64)` and therefore match a
/// direct per-sample loop bitwise; the rest obey the module-level error
/// bound (< 4×10⁻¹³ relative).
#[inline]
pub fn for_each_linear(amp: f64, phi0: f64, dphi: f64, n: usize, mut f: impl FnMut(usize, Cpx)) {
    let step = Cpx::cis(dphi);
    let mut z = Cpx::new(0.0, 0.0);
    for i in 0..n {
        if i % CHECKPOINT == 0 {
            // Exact re-anchor: identical expression to the direct loop.
            z = Cpx::from_polar(amp, phi0 + dphi * i as f64);
        }
        f(i, z);
        z *= step;
    }
}

/// Writes `out[i] = amp·exp(j(φ₀ + i·Δφ))` via the recurrence.
pub fn fill_linear(amp: f64, phi0: f64, dphi: f64, out: &mut [Cpx]) {
    let n = out.len();
    for_each_linear(amp, phi0, dphi, n, |i, z| out[i] = z);
}

/// Multiplies `samples[i] *= exp(j(φ₀ + i·Δφ))` in place — the spectrum
/// shift / carrier re-centering primitive.
pub fn rotate_linear(phi0: f64, dphi: f64, samples: &mut [Cpx]) {
    let n = samples.len();
    for_each_linear(1.0, phi0, dphi, n, |i, z| samples[i] *= z);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (transcendental-per-sample) reference.
    fn direct(amp: f64, phi0: f64, dphi: f64, n: usize) -> Vec<Cpx> {
        (0..n)
            .map(|i| Cpx::from_polar(amp, phi0 + dphi * i as f64))
            .collect()
    }

    #[test]
    fn anchors_are_bitwise_exact() {
        let (amp, phi0, dphi, n) = (0.7, 1.3, 0.0173, 1000);
        let reference = direct(amp, phi0, dphi, n);
        let mut out = vec![Cpx::new(0.0, 0.0); n];
        fill_linear(amp, phi0, dphi, &mut out);
        for i in (0..n).step_by(CHECKPOINT) {
            assert_eq!(out[i].re.to_bits(), reference[i].re.to_bits(), "i={i}");
            assert_eq!(out[i].im.to_bits(), reference[i].im.to_bits(), "i={i}");
        }
    }

    #[test]
    fn recurrence_stays_within_documented_bound() {
        let (amp, phi0, dphi, n) = (2.5, -0.4, 0.31, 4096);
        let reference = direct(amp, phi0, dphi, n);
        let mut out = vec![Cpx::new(0.0, 0.0); n];
        fill_linear(amp, phi0, dphi, &mut out);
        let bound = 4e-13 * amp;
        for (i, (got, want)) in out.iter().zip(&reference).enumerate() {
            let err = (*got - *want).abs();
            assert!(err <= bound, "i={i}: err={err:.3e} > bound={bound:.3e}");
        }
    }

    #[test]
    fn rotate_matches_direct_rotation() {
        let n = 300;
        let mut samples: Vec<Cpx> = (0..n).map(|i| Cpx::new(1.0 + i as f64, -0.5)).collect();
        let reference: Vec<Cpx> = samples
            .iter()
            .enumerate()
            .map(|(i, c)| *c * Cpx::cis(0.2 + 0.05 * i as f64))
            .collect();
        rotate_linear(0.2, 0.05, &mut samples);
        for (got, want) in samples.iter().zip(&reference) {
            assert!((*got - *want).abs() < 1e-11 * want.abs().max(1.0));
        }
    }

    #[test]
    fn zero_length_is_a_noop() {
        fill_linear(1.0, 0.0, 0.1, &mut []);
        rotate_linear(0.0, 0.1, &mut []);
    }
}
