//! Descriptive statistics used when reporting experiment results.
//!
//! The paper reports mean error, 90th-percentile error, medians and CDFs
//! (Figs. 12, 13); this module computes them the same way.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance. Returns 0 for slices shorter than 2.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Root-mean-square of the data.
pub fn rms(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    (data.iter().map(|x| x * x).sum::<f64>() / data.len() as f64).sqrt()
}

/// `p`-th percentile (0 ≤ p ≤ 100) with linear interpolation between order
/// statistics (the "linear" / type-7 method used by NumPy's default).
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median (50th percentile).
pub fn median(data: &[f64]) -> f64 {
    percentile(data, 50.0)
}

/// Empirical CDF evaluated at each sorted data point: returns
/// `(value, P(X ≤ value))` pairs, suitable for plotting Fig. 12b-style
/// curves.
pub fn empirical_cdf(data: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Mean absolute value — the "mean error" statistic of Figs. 12a/13.
pub fn mean_abs(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().map(|x| x.abs()).sum::<f64>() / data.len() as f64
}

/// Summary of a batch of error measurements, in the shape the paper reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Mean of |error|.
    pub mean_abs: f64,
    /// 90th percentile of |error|.
    pub p90_abs: f64,
    /// Median of |error|.
    pub median_abs: f64,
    /// Population variance of the signed errors.
    pub variance: f64,
    /// Number of trials.
    pub n: usize,
}

impl ErrorSummary {
    /// Summarizes a batch of signed errors.
    pub fn from_errors(errors: &[f64]) -> Self {
        let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        Self {
            mean_abs: mean(&abs),
            p90_abs: percentile(&abs, 90.0),
            median_abs: median(&abs),
            variance: variance(errors),
            n: errors.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&d), 5.0);
        assert_eq!(variance(&d), 4.0);
        assert_eq!(std_dev(&d), 2.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(mean_abs(&[]), 0.0);
        assert!(empirical_cdf(&[]).is_empty());
    }

    #[test]
    fn percentile_interpolation() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&d, 0.0), 1.0);
        assert_eq!(percentile(&d, 100.0), 4.0);
        assert_eq!(percentile(&d, 50.0), 2.5);
        assert!((percentile(&d, 90.0) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let d = [0.5, 0.1, 0.9, 0.3];
        let cdf = empirical_cdf(&d);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[-2.0, 2.0, -2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_summary() {
        let errors = [-1.0, 1.0, -1.0, 1.0, 3.0];
        let s = ErrorSummary::from_errors(&errors);
        assert!((s.mean_abs - 1.4).abs() < 1e-12);
        assert_eq!(s.median_abs, 1.0);
        assert_eq!(s.n, 5);
        assert!(s.p90_abs > 1.0 && s.p90_abs <= 3.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }
}
