//! Single-precision complex arithmetic for the opt-in f32 sweep tier.
//!
//! [`Cpx32`] mirrors the shape of [`crate::num::Cpx`] with `f32`
//! components. It exists for sweep workloads (coverage surveys, coarse
//! range scans) where a magnitude spectrum at ~1e-5 relative accuracy is
//! plenty and half the memory traffic doubles the effective SIMD width.
//! The f64 path remains the bitwise reference everywhere; nothing in the
//! default pipeline touches this type. See [`crate::plan32`] for the
//! accuracy-bounded FFT plan built on it.

use crate::num::Cpx;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` components.
///
/// `repr(C)` guarantees the `[re, im]` memory order the SIMD butterfly
/// kernels ([`crate::simd`]) rely on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Cpx32 {
    /// Real (in-phase) component.
    pub re: f32,
    /// Imaginary (quadrature) component.
    pub im: f32,
}

/// Single-precision complex zero.
pub const ZERO32: Cpx32 = Cpx32 { re: 0.0, im: 0.0 };

impl Cpx32 {
    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Narrows a double-precision sample (used when a sweep path hands
    /// f64 pipeline data to the f32 tier).
    #[inline]
    pub fn from_f64(c: Cpx) -> Self {
        Self {
            re: c.re as f32,
            im: c.im as f32,
        }
    }

    /// Widens back to double precision (for comparisons and reporting).
    #[inline]
    pub fn to_f64(self) -> Cpx {
        Cpx::new(self.re as f64, self.im as f64)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude: `re² + im²`.
    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sq().sqrt()
    }
}

impl Add for Cpx32 {
    type Output = Cpx32;
    #[inline]
    fn add(self, rhs: Cpx32) -> Cpx32 {
        Cpx32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Cpx32 {
    type Output = Cpx32;
    #[inline]
    fn sub(self, rhs: Cpx32) -> Cpx32 {
        Cpx32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cpx32 {
    type Output = Cpx32;
    #[inline]
    fn mul(self, rhs: Cpx32) -> Cpx32 {
        Cpx32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f32> for Cpx32 {
    type Output = Cpx32;
    #[inline]
    fn mul(self, k: f32) -> Cpx32 {
        Cpx32::new(self.re * k, self.im * k)
    }
}

impl Neg for Cpx32 {
    type Output = Cpx32;
    #[inline]
    fn neg(self) -> Cpx32 {
        Cpx32::new(-self.re, -self.im)
    }
}

impl AddAssign for Cpx32 {
    #[inline]
    fn add_assign(&mut self, rhs: Cpx32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Cpx32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Cpx32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Cpx32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Cpx32) {
        *self = *self * rhs;
    }
}

impl Sum for Cpx32 {
    fn sum<I: Iterator<Item = Cpx32>>(iter: I) -> Cpx32 {
        iter.fold(ZERO32, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trip() {
        let a = Cpx32::new(1.5, -2.0);
        let b = Cpx32::new(-0.25, 3.0);
        let s = a + b - b;
        assert!((s.re - a.re).abs() < 1e-6 && (s.im - a.im).abs() < 1e-6);
        let j = Cpx32::new(0.0, 1.0);
        let jj = j * j;
        assert!((jj.re + 1.0).abs() < 1e-6 && jj.im.abs() < 1e-6);
        assert!((a.norm_sq() - (1.5f32 * 1.5 + 2.0 * 2.0)).abs() < 1e-6);
    }

    #[test]
    fn f64_round_trip() {
        let c = Cpx::new(0.125, -7.5); // exactly representable both ways
        assert_eq!(Cpx32::from_f64(c).to_f64(), c);
    }
}
