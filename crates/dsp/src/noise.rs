//! Noise generation and thermal-noise arithmetic.
//!
//! Every stochastic experiment in the workspace draws its noise from here,
//! through caller-provided seeded RNGs, so runs are reproducible. Gaussian
//! variates are produced with the Box-Muller transform to avoid pulling in
//! `rand_distr`.

use crate::num::Cpx;
use crate::signal::Signal;
use rand::Rng;
use std::f64::consts::PI;

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Standard noise reference temperature in kelvin.
pub const T0_KELVIN: f64 = 290.0;

/// Draws one standard-normal variate via Box-Muller.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Draws a circularly-symmetric complex Gaussian with total variance
/// `variance` (i.e. `variance/2` per component).
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Cpx {
    let s = (variance / 2.0).sqrt();
    Cpx::new(gaussian(rng) * s, gaussian(rng) * s)
}

/// Thermal noise power in watts over bandwidth `bw` Hz at temperature `T0`,
/// with receiver noise figure `nf_db`.
///
/// `P = k·T₀·B·F` — the −174 dBm/Hz floor plus `10·log10(B)` plus NF.
pub fn thermal_noise_power(bw: f64, nf_db: f64) -> f64 {
    BOLTZMANN * T0_KELVIN * bw * 10f64.powf(nf_db / 10.0)
}

/// Thermal noise power in dBm over bandwidth `bw` Hz with noise figure
/// `nf_db`.
pub fn thermal_noise_dbm(bw: f64, nf_db: f64) -> f64 {
    watts_to_dbm(thermal_noise_power(bw, nf_db))
}

/// Converts watts to dBm.
pub fn watts_to_dbm(w: f64) -> f64 {
    10.0 * (w * 1e3).log10()
}

/// Converts dBm to watts.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0) * 1e-3
}

/// Converts a power ratio to decibels.
pub fn ratio_to_db(r: f64) -> f64 {
    10.0 * r.log10()
}

/// Converts decibels to a power ratio.
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Adds complex AWGN of total power `noise_power` (watts, i.e. |n|² mean) to
/// every sample of `sig`.
pub fn add_awgn<R: Rng + ?Sized>(sig: &mut Signal, noise_power: f64, rng: &mut R) {
    if noise_power <= 0.0 {
        return;
    }
    for c in sig.samples.iter_mut() {
        *c += complex_gaussian(rng, noise_power);
    }
}

/// Generates a pure complex-AWGN signal of `n` samples with total power
/// `noise_power` watts.
pub fn awgn_signal<R: Rng + ?Sized>(
    fs: f64,
    fc: f64,
    n: usize,
    noise_power: f64,
    rng: &mut R,
) -> Signal {
    let samples = (0..n).map(|_| complex_gaussian(rng, noise_power)).collect();
    Signal::new(fs, fc, samples)
}

/// Adds real-valued Gaussian noise with standard deviation `sigma` to a real
/// sample vector (e.g. an envelope-detector output).
pub fn add_real_noise<R: Rng + ?Sized>(samples: &mut [f64], sigma: f64, rng: &mut R) {
    if sigma <= 0.0 {
        return;
    }
    for v in samples.iter_mut() {
        *v += gaussian(rng) * sigma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn complex_gaussian_power() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let p: f64 = (0..n)
            .map(|_| complex_gaussian(&mut rng, 0.25).norm_sq())
            .sum::<f64>()
            / n as f64;
        assert!((p - 0.25).abs() < 0.01, "power {p}");
    }

    #[test]
    fn thermal_floor_matches_minus_174() {
        // kT0 at 1 Hz ≈ −173.98 dBm/Hz.
        let dbm = thermal_noise_dbm(1.0, 0.0);
        assert!((dbm + 174.0).abs() < 0.1, "{dbm}");
        // 1 GHz bandwidth → −84 dBm.
        let dbm = thermal_noise_dbm(1e9, 0.0);
        assert!((dbm + 84.0).abs() < 0.1, "{dbm}");
        // Noise figure adds straight on.
        let dbm_nf = thermal_noise_dbm(1e9, 5.0);
        assert!((dbm_nf - dbm - 5.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_round_trip() {
        for dbm in [-100.0, -30.0, 0.0, 27.0] {
            assert!((watts_to_dbm(dbm_to_watts(dbm)) - dbm).abs() < 1e-9);
        }
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_watts(27.0) - 0.501).abs() < 1e-3);
    }

    #[test]
    fn db_ratio_round_trip() {
        for db in [-40.0, -3.0, 0.0, 13.0] {
            assert!((ratio_to_db(db_to_ratio(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn awgn_power_matches_request() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Signal::zeros(1e6, 0.0, 50_000);
        add_awgn(&mut s, 1e-9, &mut rng);
        assert!((s.power() / 1e-9 - 1.0).abs() < 0.05);
    }

    #[test]
    fn zero_noise_is_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = Signal::tone(1e6, 0.0, 0.0, 1.0, 100);
        let before = s.clone();
        add_awgn(&mut s, 0.0, &mut rng);
        assert_eq!(s, before);
        let mut v = vec![1.0; 10];
        add_real_noise(&mut v, 0.0, &mut rng);
        assert!(v.iter().all(|x| *x == 1.0));
    }

    #[test]
    fn seeded_noise_is_reproducible() {
        let a = awgn_signal(1e6, 0.0, 64, 1.0, &mut StdRng::seed_from_u64(7));
        let b = awgn_signal(1e6, 0.0, 64, 1.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn real_noise_sigma() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v = vec![0.0; 100_000];
        add_real_noise(&mut v, 0.5, &mut rng);
        let var = v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        assert!((var - 0.25).abs() < 0.01);
    }
}
