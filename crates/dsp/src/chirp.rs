//! FMCW chirp synthesis.
//!
//! MilBack's AP transmits two chirp shapes (paper §5, §7, §8):
//!
//! * **Sawtooth** up-chirps for localization (Field 2 of the preamble):
//!   frequency sweeps linearly from `f_start` to `f_stop` over the chirp
//!   duration, then snaps back.
//! * **Triangular** chirps for node-side orientation sensing (Field 1):
//!   frequency sweeps up for half the duration and back down, producing the
//!   V-shape whose two beam-crossing power peaks encode orientation.
//!
//! Chirps are generated at complex baseband relative to the band center
//! `fc = (f_start + f_stop)/2`, so the instantaneous baseband offset sweeps
//! `−B/2 … +B/2`.

use crate::num::Cpx;
use crate::signal::Signal;
use std::f64::consts::PI;

/// Parameters of an FMCW chirp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChirpConfig {
    /// Sweep start RF frequency in Hz (e.g. 26.5 GHz).
    pub f_start: f64,
    /// Sweep stop RF frequency in Hz (e.g. 29.5 GHz).
    pub f_stop: f64,
    /// Chirp duration in seconds (18 µs / 45 µs in the paper).
    pub duration: f64,
    /// Baseband sample rate in Hz. Must be ≥ the swept bandwidth.
    pub fs: f64,
    /// Transmit amplitude (volts; power = amp²).
    pub amplitude: f64,
}

impl ChirpConfig {
    /// MilBack's localization chirp: 26.5–29.5 GHz over 18 µs (paper §8,
    /// Field 2 of the preamble), sampled at 4 GS/s.
    pub fn milback_sawtooth() -> Self {
        Self {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 18e-6,
            fs: 4e9,
            amplitude: 1.0,
        }
    }

    /// MilBack's orientation chirp: same band over 45 µs (Field 1, slower
    /// because the node's MCU samples at only 1 MHz).
    pub fn milback_triangular() -> Self {
        Self {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 45e-6,
            fs: 4e9,
            amplitude: 1.0,
        }
    }

    /// Swept bandwidth `f_stop − f_start` in Hz.
    pub fn bandwidth(&self) -> f64 {
        self.f_stop - self.f_start
    }

    /// Band center frequency in Hz — the `fc` of the generated baseband.
    pub fn center(&self) -> f64 {
        0.5 * (self.f_start + self.f_stop)
    }

    /// Sweep slope in Hz/s (for a sawtooth chirp).
    pub fn slope(&self) -> f64 {
        self.bandwidth() / self.duration
    }

    /// Number of baseband samples in one chirp.
    pub fn n_samples(&self) -> usize {
        (self.duration * self.fs).round() as usize
    }

    fn validate(&self) {
        assert!(self.f_stop > self.f_start, "chirp must sweep upward");
        assert!(self.duration > 0.0, "chirp duration must be positive");
        assert!(
            self.fs >= self.bandwidth(),
            "sample rate {} must cover the swept bandwidth {}",
            self.fs,
            self.bandwidth()
        );
    }

    /// Generates one sawtooth up-chirp at complex baseband.
    ///
    /// Instantaneous baseband frequency at time `t` is
    /// `−B/2 + slope·t`; the phase is its integral
    /// `φ(t) = 2π(−B/2·t + slope·t²/2)`.
    pub fn sawtooth(&self) -> Signal {
        self.validate();
        let n = self.n_samples();
        let b = self.bandwidth();
        let k = self.slope();
        let dt = 1.0 / self.fs;
        let samples: Vec<Cpx> = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                let phase = 2.0 * PI * (-0.5 * b * t + 0.5 * k * t * t);
                Cpx::from_polar(self.amplitude, phase)
            })
            .collect();
        Signal::new(self.fs, self.center(), samples)
    }

    /// Generates one triangular chirp: up-sweep for `duration/2`, then an
    /// equal down-sweep. Total length is `duration`.
    pub fn triangular(&self) -> Signal {
        self.validate();
        let n = self.n_samples();
        let half_t = self.duration / 2.0;
        let b = self.bandwidth();
        let k = b / half_t; // slope of each leg
        let dt = 1.0 / self.fs;
        let mut phase = 0.0f64;
        // Integrate the instantaneous frequency numerically so the phase is
        // continuous across the apex.
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 * dt;
            let f = if t < half_t {
                -0.5 * b + k * t
            } else {
                0.5 * b - k * (t - half_t)
            };
            samples.push(Cpx::from_polar(self.amplitude, phase));
            phase += 2.0 * PI * f * dt;
        }
        Signal::new(self.fs, self.center(), samples)
    }

    /// Instantaneous RF frequency of the sawtooth chirp at time `t` seconds.
    pub fn sawtooth_freq_at(&self, t: f64) -> f64 {
        self.f_start + self.slope() * t.clamp(0.0, self.duration)
    }

    /// Instantaneous RF frequency of the triangular chirp at time `t`.
    pub fn triangular_freq_at(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, self.duration);
        let half_t = self.duration / 2.0;
        let k = self.bandwidth() / half_t;
        if t < half_t {
            self.f_start + k * t
        } else {
            self.f_stop - k * (t - half_t)
        }
    }

    /// Times (up to two) at which the triangular chirp's instantaneous
    /// frequency crosses RF frequency `f`. This is what the node's peak
    /// separation measures: the gap between the two crossings of the beam
    /// alignment frequency.
    pub fn triangular_crossings(&self, f: f64) -> Option<(f64, f64)> {
        if f < self.f_start || f > self.f_stop {
            return None;
        }
        let half_t = self.duration / 2.0;
        let k = self.bandwidth() / half_t;
        let t1 = (f - self.f_start) / k;
        let t2 = half_t + (self.f_stop - f) / k;
        Some((t1, t2))
    }
}

/// Generates a two-tone query signal (paper §6.3): RF tones at `f_a` and
/// `f_b`, each of amplitude `amp/√2` so that total power equals `amp²`,
/// represented at baseband relative to `fc`.
pub fn two_tone(fs: f64, fc: f64, f_a: f64, f_b: f64, amp: f64, n: usize) -> Signal {
    let a = amp / 2f64.sqrt();
    let mut s = Signal::tone(fs, fc, f_a - fc, a, n);
    let b = Signal::tone(fs, fc, f_b - fc, a, n);
    s.add(&b);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{fft_freqs, power_spectrum};

    /// Estimates instantaneous frequency between consecutive samples from
    /// the phase difference.
    fn inst_freq(sig: &Signal, i: usize) -> f64 {
        let d = sig.samples[i + 1] * sig.samples[i].conj();
        d.arg() * sig.fs / (2.0 * PI)
    }

    fn small_cfg() -> ChirpConfig {
        ChirpConfig {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 2e-6,
            fs: 4e9,
            amplitude: 1.0,
        }
    }

    #[test]
    fn sawtooth_sweeps_linearly() {
        let cfg = small_cfg();
        let s = cfg.sawtooth();
        assert_eq!(s.len(), 8000);
        // At t=0 the baseband frequency is -B/2; at t=T it is +B/2.
        let f0 = inst_freq(&s, 0);
        assert!((f0 + 1.5e9).abs() < 2e6, "start freq {f0}");
        let fm = inst_freq(&s, 4000);
        assert!(fm.abs() < 2e6, "mid freq {fm}");
        let f1 = inst_freq(&s, 7998);
        assert!((f1 - 1.5e9).abs() < 2e6, "end freq {f1}");
    }

    #[test]
    fn sawtooth_power_is_amp_squared() {
        let mut cfg = small_cfg();
        cfg.amplitude = 2.0;
        let s = cfg.sawtooth();
        assert!((s.power() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn triangular_sweeps_up_then_down() {
        let cfg = small_cfg();
        let s = cfg.triangular();
        let f0 = inst_freq(&s, 0);
        assert!((f0 + 3e9 / 2.0).abs() < 1e7);
        // Apex near the middle: baseband ≈ +B/2.
        let fa = inst_freq(&s, 3999);
        assert!((fa - 1.5e9).abs() < 2e7, "apex {fa}");
        let fe = inst_freq(&s, 7998);
        assert!((fe + 1.5e9).abs() < 2e7, "end {fe}");
    }

    #[test]
    fn instantaneous_freq_helpers() {
        let cfg = small_cfg();
        assert_eq!(cfg.sawtooth_freq_at(0.0), 26.5e9);
        assert_eq!(cfg.sawtooth_freq_at(cfg.duration), 29.5e9);
        assert_eq!(cfg.triangular_freq_at(cfg.duration / 2.0), 29.5e9);
        assert_eq!(cfg.triangular_freq_at(cfg.duration), 26.5e9);
    }

    #[test]
    fn triangular_crossings_symmetric_around_apex() {
        let cfg = small_cfg();
        let f = 28.0e9;
        let (t1, t2) = cfg.triangular_crossings(f).unwrap();
        let half = cfg.duration / 2.0;
        assert!((half - t1 - (t2 - half)).abs() < 1e-15);
        assert!((cfg.triangular_freq_at(t1) - f).abs() < 1.0);
        assert!((cfg.triangular_freq_at(t2) - f).abs() < 1.0);
    }

    #[test]
    fn crossing_gap_encodes_frequency() {
        // Higher frequency → crossings closer to the apex → smaller gap.
        let cfg = small_cfg();
        let (a1, a2) = cfg.triangular_crossings(27e9).unwrap();
        let (b1, b2) = cfg.triangular_crossings(29e9).unwrap();
        assert!(b2 - b1 < a2 - a1);
    }

    #[test]
    fn out_of_band_crossing_is_none() {
        let cfg = small_cfg();
        assert!(cfg.triangular_crossings(25e9).is_none());
        assert!(cfg.triangular_crossings(30e9).is_none());
    }

    #[test]
    fn milback_defaults_match_paper() {
        let saw = ChirpConfig::milback_sawtooth();
        assert_eq!(saw.bandwidth(), 3e9);
        assert_eq!(saw.center(), 28e9);
        assert!((saw.duration - 18e-6).abs() < 1e-12);
        let tri = ChirpConfig::milback_triangular();
        assert!((tri.duration - 45e-6).abs() < 1e-12);
    }

    #[test]
    fn two_tone_spectrum_has_two_peaks() {
        let fs = 1e9;
        let fc = 28e9;
        let n = 8192;
        let s = two_tone(fs, fc, 27.9e9, 28.2e9, 1.0, n);
        assert!((s.power() - 1.0).abs() < 0.01);
        let spec = power_spectrum(&s.samples);
        let freqs = fft_freqs(n, fs);
        // Find the two largest bins.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|a, b| spec[*b].partial_cmp(&spec[*a]).unwrap());
        let mut fpeaks = [freqs[idx[0]] + fc, freqs[idx[1]] + fc];
        fpeaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((fpeaks[0] - 27.9e9).abs() < 2.0 * fs / n as f64);
        assert!((fpeaks[1] - 28.2e9).abs() < 2.0 * fs / n as f64);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn rejects_undersampled_chirp() {
        let cfg = ChirpConfig {
            fs: 1e9,
            ..small_cfg()
        };
        cfg.sawtooth();
    }
}
