//! Cross-correlation and matched filtering via FFT.
//!
//! The AP's standard range processing is FMCW dechirp (cheap, hardware-
//! friendly). Matched filtering (pulse compression) is the classical
//! alternative: correlate the capture against the transmitted chirp and
//! read delays off the correlation peaks. It is provided both as an
//! ablation reference for the ranging pipeline and as a general DSP
//! utility.

use crate::fft::next_pow2;
use crate::num::{Cpx, ZERO};
use crate::plan::with_plan;

/// Full linear cross-correlation `r[k] = Σ_n x[n+k]·y*[n]` for lags
/// `k ∈ [-(len(y)-1), len(x)-1]`, computed via FFT. Returns the lag
/// values alongside.
pub fn xcorr(x: &[Cpx], y: &[Cpx]) -> (Vec<i64>, Vec<Cpx>) {
    if x.is_empty() || y.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let n_out = x.len() + y.len() - 1;
    let m = next_pow2(n_out);
    let mut fx = x.to_vec();
    fx.resize(m, ZERO);
    // Time-reversed conjugate of y gives correlation via convolution.
    let mut fy: Vec<Cpx> = y.iter().rev().map(|c| c.conj()).collect();
    fy.resize(m, ZERO);
    // All three transforms share one cached plan for size `m`.
    with_plan(m, |p| {
        p.forward_in_place(&mut fx);
        p.forward_in_place(&mut fy);
        for (a, b) in fx.iter_mut().zip(&fy) {
            *a *= *b;
        }
        p.inverse_in_place(&mut fx);
    });
    let lags: Vec<i64> = (0..n_out as i64)
        .map(|i| i - (y.len() as i64 - 1))
        .collect();
    (lags, fx[..n_out].to_vec())
}

/// Matched filter: correlates `rx` against the known `template` and
/// returns `|r[k]|²` for non-negative lags only (delays), normalized by
/// the template energy so a perfect echo of amplitude `a` peaks at
/// `a²·E_template`.
pub fn matched_filter(rx: &[Cpx], template: &[Cpx]) -> Vec<f64> {
    let (lags, r) = xcorr(rx, template);
    let e: f64 = template.iter().map(|c| c.norm_sq()).sum();
    if e == 0.0 {
        return vec![0.0; rx.len()];
    }
    lags.iter()
        .zip(&r)
        .filter(|(l, _)| **l >= 0)
        .map(|(_, c)| c.norm_sq() / e)
        .collect()
}

/// Normalized correlation coefficient between two equal-length signals:
/// `|<x, y>| / (‖x‖·‖y‖)` ∈ [0, 1].
pub fn correlation_coefficient(x: &[Cpx], y: &[Cpx]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let dot: Cpx = x.iter().zip(y).map(|(a, b)| *a * b.conj()).sum();
    let ex: f64 = x.iter().map(|c| c.norm_sq()).sum();
    let ey: f64 = y.iter().map(|c| c.norm_sq()).sum();
    if ex == 0.0 || ey == 0.0 {
        return 0.0;
    }
    dot.abs() / (ex * ey).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_xcorr(x: &[Cpx], y: &[Cpx]) -> Vec<Cpx> {
        let n_out = x.len() + y.len() - 1;
        (0..n_out)
            .map(|i| {
                let k = i as i64 - (y.len() as i64 - 1);
                let mut acc = ZERO;
                for (n, yv) in y.iter().enumerate() {
                    let xi = n as i64 + k;
                    if xi >= 0 && (xi as usize) < x.len() {
                        acc += x[xi as usize] * yv.conj();
                    }
                }
                acc
            })
            .collect()
    }

    fn ramp(n: usize, f: f64) -> Vec<Cpx> {
        (0..n)
            .map(|i| Cpx::cis(i as f64 * f) * (1.0 + 0.1 * i as f64))
            .collect()
    }

    #[test]
    fn matches_naive_correlation() {
        let x = ramp(37, 0.3);
        let y = ramp(12, 0.7);
        let (lags, r) = xcorr(&x, &y);
        let expect = naive_xcorr(&x, &y);
        assert_eq!(lags.len(), expect.len());
        assert_eq!(lags[0], -11);
        assert_eq!(*lags.last().unwrap(), 36);
        for (a, b) in r.iter().zip(&expect) {
            assert!((*a - *b).abs() < 1e-8, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn autocorrelation_peaks_at_zero_lag() {
        let x = ramp(64, 0.9);
        let (lags, r) = xcorr(&x, &x);
        let peak = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(lags[peak], 0);
    }

    #[test]
    fn matched_filter_finds_delayed_echo() {
        let template = ramp(128, 0.45);
        let delay = 40;
        let mut rx = vec![ZERO; 512];
        for (i, &c) in template.iter().enumerate() {
            rx[delay + i] = c * 0.5;
        }
        let mf = matched_filter(&rx, &template);
        let peak = mf
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(peak.0, delay);
        // Amplitude 0.5 echo peaks at 0.25·E.
        let e: f64 = template.iter().map(|c| c.norm_sq()).sum();
        assert!((peak.1 / (0.25 * e) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chirp_compression_gain() {
        // A chirp's autocorrelation is far narrower than the chirp — the
        // whole point of pulse compression.
        let chirp: Vec<Cpx> = (0..512)
            .map(|i| {
                let t = i as f64 / 512.0;
                Cpx::cis(2.0 * std::f64::consts::PI * (200.0 * t * t))
            })
            .collect();
        let mf = matched_filter(&chirp, &chirp);
        let peak = mf.iter().cloned().fold(f64::MIN, f64::max);
        // −3 dB width of the compressed pulse.
        let above: usize = mf.iter().filter(|v| **v > peak / 2.0).count();
        assert!(above < 10, "compressed width {above} samples");
    }

    #[test]
    fn correlation_coefficient_properties() {
        let x = ramp(50, 0.2);
        assert!((correlation_coefficient(&x, &x) - 1.0).abs() < 1e-12);
        let y: Vec<Cpx> = x.iter().map(|c| *c * Cpx::cis(1.0) * 3.0).collect();
        assert!((correlation_coefficient(&x, &y) - 1.0).abs() < 1e-12);
        let z = ramp(50, 2.9);
        assert!(correlation_coefficient(&x, &z) < 0.5);
        assert_eq!(correlation_coefficient(&x, &vec![ZERO; 50]), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let (l, r) = xcorr(&[], &[Cpx::new(1.0, 0.0)]);
        assert!(l.is_empty() && r.is_empty());
        assert_eq!(matched_filter(&[ZERO; 4], &[ZERO; 2]), vec![0.0; 4]);
    }
}
