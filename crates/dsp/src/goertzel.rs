//! Goertzel algorithm: single-bin DFT evaluation.
//!
//! When only one or two frequencies matter — e.g. the AP probing the
//! power at the two OAQFM tone offsets, or test code checking a mixer
//! output — the Goertzel recurrence computes one DFT bin in O(N) with a
//! two-tap state, far cheaper than a full FFT and the standard choice on
//! small MCUs.

use crate::num::Cpx;

/// Computes the DFT of `input` at the single frequency `f` Hz for sample
/// rate `fs` (not restricted to integer bins): returns the complex
/// correlation `Σ x[n]·e^{-j2πfn/fs}`.
pub fn goertzel(input: &[Cpx], f: f64, fs: f64) -> Cpx {
    assert!(fs > 0.0, "sample rate must be positive");
    let w = 2.0 * std::f64::consts::PI * f / fs;
    // Complex-input Goertzel: run the real recurrence on I and Q.
    let coeff = 2.0 * w.cos();
    let mut s1_re = 0.0;
    let mut s2_re = 0.0;
    let mut s1_im = 0.0;
    let mut s2_im = 0.0;
    for c in input {
        let s0_re = c.re + coeff * s1_re - s2_re;
        s2_re = s1_re;
        s1_re = s0_re;
        let s0_im = c.im + coeff * s1_im - s2_im;
        s2_im = s1_im;
        s1_im = s0_im;
    }
    // Finalize: X = s1 − s2·e^{-jw}, then compensate the phase reference
    // to match Σ x[n]e^{-jwn}.
    let e = Cpx::cis(-w);
    let x = Cpx::new(s1_re, s1_im) - Cpx::new(s2_re, s2_im) * e;
    let n = input.len() as f64;
    x * Cpx::cis(-w * (n - 1.0))
}

/// Power of `input` at frequency `f`: `|goertzel|² / N²` — the mean-square
/// amplitude of a tone at `f` (a unit-amplitude tone yields 1.0).
pub fn tone_power(input: &[Cpx], f: f64, fs: f64) -> f64 {
    if input.is_empty() {
        return 0.0;
    }
    let x = goertzel(input, f, fs);
    x.norm_sq() / (input.len() as f64).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;
    use crate::signal::Signal;

    #[test]
    fn matches_fft_bin() {
        let fs = 1e6;
        let n = 256;
        let sig = Signal::tone(fs, 0.0, 31e3, 1.3, n);
        let spec = fft(&sig.samples);
        for k in [3usize, 8, 31, 100] {
            let f = k as f64 * fs / n as f64;
            let g = goertzel(&sig.samples, f, fs);
            assert!(
                (g - spec[k]).abs() < 1e-6 * (spec[k].abs() + 1.0),
                "bin {k}: {g:?} vs {:?}",
                spec[k]
            );
        }
    }

    #[test]
    fn tone_power_of_unit_tone_is_one() {
        let fs = 1e6;
        let sig = Signal::tone(fs, 0.0, 125e3, 1.0, 512);
        let p = tone_power(&sig.samples, 125e3, fs);
        assert!((p - 1.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn off_frequency_power_is_small() {
        let fs = 1e6;
        let sig = Signal::tone(fs, 0.0, 125e3, 1.0, 512);
        // A bin-aligned distant frequency sees essentially nothing.
        let p = tone_power(&sig.samples, 250e3, fs);
        assert!(p < 1e-20, "{p}");
    }

    #[test]
    fn non_integer_bin_frequencies_work() {
        let fs = 1e6;
        let f = 123_456.7;
        let sig = Signal::tone(fs, 0.0, f, 2.0, 1000);
        let p = tone_power(&sig.samples, f, fs);
        assert!((p - 4.0).abs() < 1e-6, "{p}");
    }

    #[test]
    fn two_tone_separation() {
        let fs = 1e6;
        let mut sig = Signal::tone(fs, 0.0, 100e3, 1.0, 1000);
        sig.add(&Signal::tone(fs, 0.0, 300e3, 0.5, 1000));
        let p1 = tone_power(&sig.samples, 100e3, fs);
        let p2 = tone_power(&sig.samples, 300e3, fs);
        assert!((p1 - 1.0).abs() < 1e-6);
        assert!((p2 - 0.25).abs() < 1e-6);
    }

    #[test]
    fn empty_input() {
        assert_eq!(tone_power(&[], 1e3, 1e6), 0.0);
    }
}
