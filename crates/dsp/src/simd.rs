//! AVX butterfly kernels for the FFT plans (DESIGN.md §17).
//!
//! These kernels exist because the radix-4 inner loop is an
//! array-of-structs complex multiply — a shape LLVM's autovectorizer
//! handles poorly (it scalarizes the shuffle between the `re`/`im`
//! lanes). Hand-written AVX closes that gap while staying **bitwise
//! identical** to the scalar kernels in [`crate::plan`] / [`crate::plan32`]:
//!
//! * Only `mul`/`add`/`sub`/`addsub` vector instructions are used —
//!   never FMA, whose fused rounding would change results.
//! * The complex product is assembled as
//!   `(x.re·t.re − x.im·t.im, x.re·t.im + x.im·t.re)` — the *exact*
//!   expressions (operands and order) of `Cpx::mul` / `Cpx32::mul` —
//!   by duplicating the data lanes and swapping the twiddle lanes, so
//!   each output element is produced by the same IEEE 754 operation
//!   sequence as the scalar path. `vaddsubpd` subtracts in even lanes
//!   and adds in odd lanes, which is precisely the re/im split.
//! * Butterfly adds/subs map one-to-one onto `vaddpd`/`vsubpd`.
//!
//! Dispatch is runtime-checked ([`avx_available`], cached by
//! `std::arch`'s feature-detection atomics) with the scalar loops as the
//! universal fallback, so plans behave identically — bit for bit — on
//! every host. The `unsafe` here is confined to (a) the `avx`
//! target-feature contract, discharged by the runtime check, and (b)
//! reinterpreting `&[Cpx]`/`&[Cpx32]` as packed scalars, discharged by
//! the `repr(C)` layout of both types.

#![cfg(target_arch = "x86_64")]
// `usize::is_multiple_of` needs Rust 1.87; the workspace declares
// rust-version 1.75, so the debug asserts keep the manual `%` form.
#![allow(clippy::manual_is_multiple_of)]

use crate::num::Cpx;
use crate::num32::Cpx32;
use core::arch::x86_64::*;

/// Whether the AVX kernels may run on this host. The detection macro
/// caches its CPUID probe, so calling this per stage is free. Setting
/// `MILBACK_FORCE_SCALAR=1` disables the vector kernels — used to
/// exercise (and A/B against) the scalar fallback on x86 hosts; results
/// are bitwise identical either way.
#[inline]
pub fn avx_available() -> bool {
    use std::sync::OnceLock;
    static FORCE_SCALAR: OnceLock<bool> = OnceLock::new();
    let forced =
        *FORCE_SCALAR.get_or_init(|| std::env::var("MILBACK_FORCE_SCALAR").is_ok_and(|v| v == "1"));
    !forced && std::arch::is_x86_feature_detected!("avx")
}

/// Packed complex multiply `x * t` for two f64 pairs: the exact scalar
/// expressions of `Cpx::mul` per pair (see module docs).
#[inline]
#[target_feature(enable = "avx")]
unsafe fn cmul_pd(x: __m256d, t: __m256d) -> __m256d {
    let x_re = _mm256_movedup_pd(x); // (x.re, x.re) per pair
    let x_im = _mm256_permute_pd(x, 0b1111); // (x.im, x.im) per pair
    let t_swap = _mm256_permute_pd(t, 0b0101); // (t.im, t.re) per pair
    let p1 = _mm256_mul_pd(x_re, t); // (x.re·t.re, x.re·t.im)
    let p2 = _mm256_mul_pd(x_im, t_swap); // (x.im·t.im, x.im·t.re)
    _mm256_addsub_pd(p1, p2) // (p1 − p2, p1 + p2) per lane pair
}

/// One radix-2 stage of span `len` over `data`.
///
/// # Safety
/// Caller must ensure AVX is available, `len` is a power of two with
/// `len/2 ≥ 2`, `data.len()` is a multiple of `len`, and `tw` holds the
/// stage's `len/2` twiddles.
#[target_feature(enable = "avx")]
pub unsafe fn radix2_stage_pd(data: &mut [Cpx], tw: &[Cpx], len: usize) {
    let half = len / 2;
    debug_assert!(half >= 2 && tw.len() == half && data.len() % len == 0);
    let tw_p = tw.as_ptr() as *const f64;
    for block in data.chunks_exact_mut(len) {
        let (lo, hi) = block.split_at_mut(half);
        let lo_p = lo.as_mut_ptr() as *mut f64;
        let hi_p = hi.as_mut_ptr() as *mut f64;
        for k in (0..half).step_by(2) {
            let i = 2 * k;
            let u = _mm256_loadu_pd(lo_p.add(i));
            let v = _mm256_loadu_pd(hi_p.add(i));
            let t = _mm256_loadu_pd(tw_p.add(i));
            let b = cmul_pd(v, t);
            _mm256_storeu_pd(lo_p.add(i), _mm256_add_pd(u, b));
            _mm256_storeu_pd(hi_p.add(i), _mm256_sub_pd(u, b));
        }
    }
}

/// Two fused radix-2 stages (spans `len` and `2·len`) over `data` — the
/// vector twin of `FftPlan::radix4_pair`'s scalar loop.
///
/// # Safety
/// Caller must ensure AVX is available, `len/2 ≥ 2`, `data.len()` is a
/// multiple of `2·len`, `twa` holds the `len`-stage's `len/2` twiddles
/// and `tb_lo`/`tb_hi` the low/high halves of the `2·len`-stage's.
#[target_feature(enable = "avx")]
pub unsafe fn radix4_pair_pd(
    data: &mut [Cpx],
    twa: &[Cpx],
    tb_lo: &[Cpx],
    tb_hi: &[Cpx],
    len: usize,
) {
    let half = len / 2;
    debug_assert!(half >= 2 && twa.len() == half && tb_lo.len() == half && tb_hi.len() == half);
    debug_assert!(data.len() % (2 * len) == 0);
    let ta_p = twa.as_ptr() as *const f64;
    let tl_p = tb_lo.as_ptr() as *const f64;
    let th_p = tb_hi.as_ptr() as *const f64;
    for block in data.chunks_exact_mut(2 * len) {
        let p = block.as_mut_ptr() as *mut f64;
        let x0 = p;
        let x1 = p.add(2 * half);
        let x2 = p.add(4 * half);
        let x3 = p.add(6 * half);
        for k in (0..half).step_by(2) {
            let i = 2 * k;
            let ta = _mm256_loadu_pd(ta_p.add(i));
            let u0 = _mm256_loadu_pd(x0.add(i));
            let v0 = cmul_pd(_mm256_loadu_pd(x1.add(i)), ta);
            let u1 = _mm256_loadu_pd(x2.add(i));
            let v1 = cmul_pd(_mm256_loadu_pd(x3.add(i)), ta);
            let a = _mm256_add_pd(u0, v0);
            let c = _mm256_sub_pd(u0, v0);
            let e = _mm256_add_pd(u1, v1);
            let g = _mm256_sub_pd(u1, v1);
            let eb = cmul_pd(e, _mm256_loadu_pd(tl_p.add(i)));
            let gb = cmul_pd(g, _mm256_loadu_pd(th_p.add(i)));
            _mm256_storeu_pd(x0.add(i), _mm256_add_pd(a, eb));
            _mm256_storeu_pd(x2.add(i), _mm256_sub_pd(a, eb));
            _mm256_storeu_pd(x1.add(i), _mm256_add_pd(c, gb));
            _mm256_storeu_pd(x3.add(i), _mm256_sub_pd(c, gb));
        }
    }
}

/// Packed complex multiply `x * t` for four f32 pairs: the exact scalar
/// expressions of `Cpx32::mul` per pair.
#[inline]
#[target_feature(enable = "avx")]
unsafe fn cmul_ps(x: __m256, t: __m256) -> __m256 {
    let x_re = _mm256_moveldup_ps(x);
    let x_im = _mm256_movehdup_ps(x);
    let t_swap = _mm256_permute_ps(t, 0b10_11_00_01);
    let p1 = _mm256_mul_ps(x_re, t);
    let p2 = _mm256_mul_ps(x_im, t_swap);
    _mm256_addsub_ps(p1, p2)
}

/// One radix-2 stage of span `len` over f32 data.
///
/// # Safety
/// As [`radix2_stage_pd`] but with `len/2 ≥ 4` (four pairs per vector).
#[target_feature(enable = "avx")]
pub unsafe fn radix2_stage_ps(data: &mut [Cpx32], tw: &[Cpx32], len: usize) {
    let half = len / 2;
    debug_assert!(half >= 4 && tw.len() == half && data.len() % len == 0);
    let tw_p = tw.as_ptr() as *const f32;
    for block in data.chunks_exact_mut(len) {
        let (lo, hi) = block.split_at_mut(half);
        let lo_p = lo.as_mut_ptr() as *mut f32;
        let hi_p = hi.as_mut_ptr() as *mut f32;
        for k in (0..half).step_by(4) {
            let i = 2 * k;
            let u = _mm256_loadu_ps(lo_p.add(i));
            let v = _mm256_loadu_ps(hi_p.add(i));
            let t = _mm256_loadu_ps(tw_p.add(i));
            let b = cmul_ps(v, t);
            _mm256_storeu_ps(lo_p.add(i), _mm256_add_ps(u, b));
            _mm256_storeu_ps(hi_p.add(i), _mm256_sub_ps(u, b));
        }
    }
}

/// Two fused radix-2 stages over f32 data.
///
/// # Safety
/// As [`radix4_pair_pd`] but with `len/2 ≥ 4` (four pairs per vector).
#[target_feature(enable = "avx")]
pub unsafe fn radix4_pair_ps(
    data: &mut [Cpx32],
    twa: &[Cpx32],
    tb_lo: &[Cpx32],
    tb_hi: &[Cpx32],
    len: usize,
) {
    let half = len / 2;
    debug_assert!(half >= 4 && twa.len() == half && tb_lo.len() == half && tb_hi.len() == half);
    debug_assert!(data.len() % (2 * len) == 0);
    let ta_p = twa.as_ptr() as *const f32;
    let tl_p = tb_lo.as_ptr() as *const f32;
    let th_p = tb_hi.as_ptr() as *const f32;
    for block in data.chunks_exact_mut(2 * len) {
        let p = block.as_mut_ptr() as *mut f32;
        let x0 = p;
        let x1 = p.add(2 * half);
        let x2 = p.add(4 * half);
        let x3 = p.add(6 * half);
        for k in (0..half).step_by(4) {
            let i = 2 * k;
            let ta = _mm256_loadu_ps(ta_p.add(i));
            let u0 = _mm256_loadu_ps(x0.add(i));
            let v0 = cmul_ps(_mm256_loadu_ps(x1.add(i)), ta);
            let u1 = _mm256_loadu_ps(x2.add(i));
            let v1 = cmul_ps(_mm256_loadu_ps(x3.add(i)), ta);
            let a = _mm256_add_ps(u0, v0);
            let c = _mm256_sub_ps(u0, v0);
            let e = _mm256_add_ps(u1, v1);
            let g = _mm256_sub_ps(u1, v1);
            let eb = cmul_ps(e, _mm256_loadu_ps(tl_p.add(i)));
            let gb = cmul_ps(g, _mm256_loadu_ps(th_p.add(i)));
            _mm256_storeu_ps(x0.add(i), _mm256_add_ps(a, eb));
            _mm256_storeu_ps(x2.add(i), _mm256_sub_ps(a, eb));
            _mm256_storeu_ps(x1.add(i), _mm256_add_ps(c, gb));
            _mm256_storeu_ps(x3.add(i), _mm256_sub_ps(c, gb));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar twins of the kernels above, written exactly like the
    /// `FftPlan` loops — the SIMD paths must match them bit for bit.
    fn radix2_scalar(data: &mut [Cpx], tw: &[Cpx], len: usize) {
        let half = len / 2;
        for block in data.chunks_exact_mut(len) {
            let (lo, hi) = block.split_at_mut(half);
            for ((u, v), t) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
                let a = *u;
                let b = *v * *t;
                *u = a + b;
                *v = a - b;
            }
        }
    }

    fn radix4_scalar(data: &mut [Cpx], twa: &[Cpx], tb_lo: &[Cpx], tb_hi: &[Cpx], len: usize) {
        let half = len / 2;
        for block in data.chunks_exact_mut(2 * len) {
            let (x01, x23) = block.split_at_mut(len);
            let (x0, x1) = x01.split_at_mut(half);
            let (x2, x3) = x23.split_at_mut(half);
            for k in 0..half {
                let ta = twa[k];
                let u0 = x0[k];
                let v0 = x1[k] * ta;
                let u1 = x2[k];
                let v1 = x3[k] * ta;
                let a = u0 + v0;
                let c = u0 - v0;
                let e = u1 + v1;
                let g = u1 - v1;
                let eb = e * tb_lo[k];
                let gb = g * tb_hi[k];
                x0[k] = a + eb;
                x2[k] = a - eb;
                x1[k] = c + gb;
                x3[k] = c - gb;
            }
        }
    }

    fn twiddles(len: usize) -> Vec<Cpx> {
        (0..len / 2)
            .map(|k| Cpx::cis(-2.0 * std::f64::consts::PI * k as f64 / len as f64))
            .collect()
    }

    #[test]
    fn avx_radix2_matches_scalar_bitwise() {
        if !avx_available() {
            return;
        }
        for len in [4usize, 8, 64, 512] {
            let tw = twiddles(len);
            let base: Vec<Cpx> = (0..4 * len)
                .map(|i| Cpx::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let mut scalar = base.clone();
            radix2_scalar(&mut scalar, &tw, len);
            let mut vector = base;
            unsafe { radix2_stage_pd(&mut vector, &tw, len) };
            assert_eq!(scalar, vector, "len={len}");
        }
    }

    #[test]
    fn avx_radix4_matches_scalar_bitwise() {
        if !avx_available() {
            return;
        }
        for len in [4usize, 16, 128, 1024] {
            let twa = twiddles(len);
            let twb = twiddles(2 * len);
            let (tb_lo, tb_hi) = twb.split_at(len / 2);
            let base: Vec<Cpx> = (0..4 * len)
                .map(|i| Cpx::new((i as f64 * 1.1).sin(), (i as f64 * 0.9).cos()))
                .collect();
            let mut scalar = base.clone();
            radix4_scalar(&mut scalar, &twa, tb_lo, tb_hi, len);
            let mut vector = base;
            unsafe { radix4_pair_pd(&mut vector, &twa, tb_lo, tb_hi, len) };
            assert_eq!(scalar, vector, "len={len}");
        }
    }

    #[test]
    fn avx_f32_kernels_match_scalar_bitwise() {
        if !avx_available() {
            return;
        }
        let len = 64usize;
        let half = len / 2;
        let tw32: Vec<Cpx32> = twiddles(len).iter().map(|&c| Cpx32::from_f64(c)).collect();
        let twb32: Vec<Cpx32> = twiddles(2 * len)
            .iter()
            .map(|&c| Cpx32::from_f64(c))
            .collect();
        let (tb_lo, tb_hi) = twb32.split_at(half);
        let base: Vec<Cpx32> = (0..4 * len)
            .map(|i| Cpx32::new((i as f32 * 0.7).sin(), (i as f32 * 0.3).cos()))
            .collect();

        // radix-2: scalar twin inline.
        let mut scalar = base.clone();
        for block in scalar.chunks_exact_mut(len) {
            let (lo, hi) = block.split_at_mut(half);
            for ((u, v), t) in lo.iter_mut().zip(hi.iter_mut()).zip(&tw32) {
                let a = *u;
                let b = *v * *t;
                *u = a + b;
                *v = a - b;
            }
        }
        let mut vector = base.clone();
        unsafe { radix2_stage_ps(&mut vector, &tw32, len) };
        assert_eq!(scalar, vector);

        // radix-4: scalar twin inline.
        let mut scalar = base.clone();
        for block in scalar.chunks_exact_mut(2 * len) {
            let (x01, x23) = block.split_at_mut(len);
            let (x0, x1) = x01.split_at_mut(half);
            let (x2, x3) = x23.split_at_mut(half);
            for k in 0..half {
                let ta = tw32[k];
                let u0 = x0[k];
                let v0 = x1[k] * ta;
                let u1 = x2[k];
                let v1 = x3[k] * ta;
                let a = u0 + v0;
                let c = u0 - v0;
                let e = u1 + v1;
                let g = u1 - v1;
                let eb = e * tb_lo[k];
                let gb = g * tb_hi[k];
                x0[k] = a + eb;
                x2[k] = a - eb;
                x1[k] = c + gb;
                x3[k] = c - gb;
            }
        }
        let mut vector = base;
        unsafe { radix4_pair_ps(&mut vector, &tw32, tb_lo, tb_hi, len) };
        assert_eq!(scalar, vector);
    }
}
