//! Digital filters: windowed-sinc FIR design, biquad (RBJ cookbook) IIR
//! sections, and the single-pole low-pass used to model envelope-detector
//! video bandwidth.
//!
//! The AP's uplink receive chain (paper Fig. 7) mixes the received signal
//! with each query tone and band-pass filters the product to reject DC
//! (static clutter + self-interference) and the 2f / f_A±f_B mixing images.
//! Those band-pass filters live here.

use crate::num::{Cpx, ZERO};
use std::f64::consts::PI;

// ---------------------------------------------------------------------------
// FIR
// ---------------------------------------------------------------------------

/// A finite-impulse-response filter with real taps, applied to complex
/// signals.
#[derive(Debug, Clone, PartialEq)]
pub struct Fir {
    /// Filter taps.
    pub taps: Vec<f64>,
}

impl Fir {
    /// Designs a windowed-sinc low-pass FIR.
    ///
    /// * `cutoff` — cutoff frequency in Hz
    /// * `fs` — sample rate in Hz
    /// * `n_taps` — number of taps (odd count gives integer group delay)
    pub fn lowpass(cutoff: f64, fs: f64, n_taps: usize) -> Self {
        assert!(cutoff > 0.0 && cutoff < fs / 2.0, "cutoff out of range");
        assert!(n_taps >= 3, "need at least 3 taps");
        let fc = cutoff / fs;
        let m = (n_taps - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..n_taps)
            .map(|i| {
                let x = i as f64 - m;
                let sinc = if x == 0.0 {
                    2.0 * fc
                } else {
                    (2.0 * PI * fc * x).sin() / (PI * x)
                };
                // Hamming window to tame ripple.
                let w = 0.54 - 0.46 * (2.0 * PI * i as f64 / (n_taps - 1) as f64).cos();
                sinc * w
            })
            .collect();
        // Normalize for unity DC gain.
        let sum: f64 = taps.iter().sum();
        for t in taps.iter_mut() {
            *t /= sum;
        }
        Self { taps }
    }

    /// Designs a windowed-sinc low-pass with an explicit window choice.
    /// The window sets the stopband floor (Hamming ≈ −53 dB, Blackman ≈
    /// −74 dB, Blackman-Harris ≈ −92 dB) — pick Blackman-Harris when a
    /// strong out-of-band interferer must be crushed, e.g. the cross-tone
    /// clutter in the uplink mixer chain.
    pub fn lowpass_with_window(
        cutoff: f64,
        fs: f64,
        n_taps: usize,
        window: crate::window::Window,
    ) -> Self {
        assert!(cutoff > 0.0 && cutoff < fs / 2.0, "cutoff out of range");
        assert!(n_taps >= 3, "need at least 3 taps");
        let fc = cutoff / fs;
        let m = (n_taps - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..n_taps)
            .map(|i| {
                let x = i as f64 - m;
                let sinc = if x == 0.0 {
                    2.0 * fc
                } else {
                    (2.0 * PI * fc * x).sin() / (PI * x)
                };
                sinc * window.coeff(i, n_taps - 1)
            })
            .collect();
        let sum: f64 = taps.iter().sum();
        for t in taps.iter_mut() {
            *t /= sum;
        }
        Self { taps }
    }

    /// Designs a band-pass FIR centered between `f_lo` and `f_hi` by
    /// modulating a low-pass prototype to the band center.
    pub fn bandpass(f_lo: f64, f_hi: f64, fs: f64, n_taps: usize) -> Self {
        assert!(
            f_lo > 0.0 && f_hi > f_lo && f_hi < fs / 2.0,
            "band out of range"
        );
        let half_bw = (f_hi - f_lo) / 2.0;
        let center = (f_hi + f_lo) / 2.0;
        let proto = Self::lowpass(half_bw, fs, n_taps);
        let m = (n_taps - 1) as f64 / 2.0;
        let taps = proto
            .taps
            .iter()
            .enumerate()
            // ×2 restores unity passband gain after modulation.
            .map(|(i, t)| 2.0 * t * (2.0 * PI * center * (i as f64 - m) / fs).cos())
            .collect();
        Self { taps }
    }

    /// Group delay in samples (linear-phase FIR).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Convolves the filter with a complex signal ("same" mode: output has
    /// the input length, aligned to remove the group delay).
    pub fn apply(&self, input: &[Cpx]) -> Vec<Cpx> {
        let mut out = Vec::new();
        self.apply_into(input, &mut out);
        out
    }

    /// [`Fir::apply`] into a pooled buffer: `out` is cleared and refilled
    /// (reusing its capacity), with accumulation order identical to
    /// `apply` — same input, same taps, bitwise-same output.
    pub fn apply_into(&self, input: &[Cpx], out: &mut Vec<Cpx>) {
        let n = input.len();
        let k = self.taps.len();
        let delay = (k - 1) / 2;
        out.clear();
        out.resize(n, ZERO);
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = ZERO;
            for (j, t) in self.taps.iter().enumerate() {
                // Output sample i corresponds to full-convolution index
                // i + delay.
                let idx = (i + delay) as isize - j as isize;
                if idx >= 0 && (idx as usize) < n {
                    acc += input[idx as usize] * *t;
                }
            }
            *slot = acc;
        }
    }

    /// Applies the filter to a real-valued signal.
    pub fn apply_real(&self, input: &[f64]) -> Vec<f64> {
        let n = input.len();
        let k = self.taps.len();
        let delay = (k - 1) / 2;
        let mut out = vec![0.0; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, t) in self.taps.iter().enumerate() {
                let idx = (i + delay) as isize - j as isize;
                if idx >= 0 && (idx as usize) < n {
                    acc += input[idx as usize] * *t;
                }
            }
            *slot = acc;
        }
        out
    }

    /// Magnitude response at frequency `f` (Hz) for sample rate `fs`.
    pub fn response_at(&self, f: f64, fs: f64) -> f64 {
        let w = 2.0 * PI * f / fs;
        let h: Cpx = self
            .taps
            .iter()
            .enumerate()
            .map(|(n, t)| Cpx::from_polar(*t, -w * n as f64))
            .sum();
        h.abs()
    }
}

// ---------------------------------------------------------------------------
// Biquad (RBJ audio-EQ cookbook)
// ---------------------------------------------------------------------------

/// A single second-order IIR section in direct form I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
}

impl Biquad {
    /// Butterworth-Q low-pass biquad at cutoff `f0` Hz, sample rate `fs`.
    pub fn lowpass(f0: f64, fs: f64) -> Self {
        Self::from_rbj(f0, fs, std::f64::consts::FRAC_1_SQRT_2, Kind::LowPass)
    }

    /// Butterworth-Q high-pass biquad at cutoff `f0` Hz.
    pub fn highpass(f0: f64, fs: f64) -> Self {
        Self::from_rbj(f0, fs, std::f64::consts::FRAC_1_SQRT_2, Kind::HighPass)
    }

    /// Band-pass biquad (constant 0 dB peak gain) centered at `f0` with
    /// quality factor `q`.
    pub fn bandpass(f0: f64, fs: f64, q: f64) -> Self {
        Self::from_rbj(f0, fs, q, Kind::BandPass)
    }

    fn from_rbj(f0: f64, fs: f64, q: f64, kind: Kind) -> Self {
        assert!(f0 > 0.0 && f0 < fs / 2.0, "corner out of range");
        assert!(q > 0.0, "Q must be positive");
        let w0 = 2.0 * PI * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        let (b0, b1, b2) = match kind {
            Kind::LowPass => {
                let k = (1.0 - cw) / 2.0;
                (k, 1.0 - cw, k)
            }
            Kind::HighPass => {
                let k = (1.0 + cw) / 2.0;
                (k, -(1.0 + cw), k)
            }
            Kind::BandPass => (alpha, 0.0, -alpha),
        };
        Self {
            b0: b0 / a0,
            b1: b1 / a0,
            b2: b2 / a0,
            a1: -2.0 * cw / a0,
            a2: (1.0 - alpha) / a0,
        }
    }

    /// Runs the filter over a real signal (zero initial state).
    pub fn apply_real(&self, input: &[f64]) -> Vec<f64> {
        let mut x1 = 0.0;
        let mut x2 = 0.0;
        let mut y1 = 0.0;
        let mut y2 = 0.0;
        input
            .iter()
            .map(|&x| {
                let y = self.b0 * x + self.b1 * x1 + self.b2 * x2 - self.a1 * y1 - self.a2 * y2;
                x2 = x1;
                x1 = x;
                y2 = y1;
                y1 = y;
                y
            })
            .collect()
    }

    /// Runs the filter over a complex signal (applied to I and Q
    /// independently).
    pub fn apply(&self, input: &[Cpx]) -> Vec<Cpx> {
        let re: Vec<f64> = input.iter().map(|c| c.re).collect();
        let im: Vec<f64> = input.iter().map(|c| c.im).collect();
        let yr = self.apply_real(&re);
        let yi = self.apply_real(&im);
        yr.into_iter()
            .zip(yi)
            .map(|(r, i)| Cpx::new(r, i))
            .collect()
    }

    /// Magnitude response at frequency `f` Hz for sample rate `fs`.
    pub fn response_at(&self, f: f64, fs: f64) -> f64 {
        let w = 2.0 * PI * f / fs;
        let z1 = Cpx::cis(-w);
        let z2 = Cpx::cis(-2.0 * w);
        let num = Cpx::real(self.b0) + z1 * self.b1 + z2 * self.b2;
        let den = Cpx::real(1.0) + z1 * self.a1 + z2 * self.a2;
        (num / den).abs()
    }
}

#[derive(Clone, Copy)]
#[allow(clippy::enum_variant_names)] // LowPass/HighPass/BandPass is the domain vocabulary
enum Kind {
    LowPass,
    HighPass,
    BandPass,
}

// ---------------------------------------------------------------------------
// Single-pole low-pass (RC)
// ---------------------------------------------------------------------------

/// First-order RC low-pass, used to model the finite video bandwidth
/// (rise/fall time) of the envelope detectors: `y[n] = y[n-1] + α(x[n] −
/// y[n-1])`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePole {
    alpha: f64,
    state: f64,
}

impl OnePole {
    /// Creates a one-pole low-pass with 3 dB corner `f3db` Hz at sample rate
    /// `fs`.
    pub fn new(f3db: f64, fs: f64) -> Self {
        assert!(f3db > 0.0 && fs > 0.0, "invalid one-pole parameters");
        // Exact impulse-invariant mapping.
        let alpha = 1.0 - (-2.0 * PI * f3db / fs).exp();
        Self { alpha, state: 0.0 }
    }

    /// Creates a one-pole from a 10–90% rise time: `t_r ≈ 0.35 / f3db`.
    pub fn from_rise_time(rise_time: f64, fs: f64) -> Self {
        Self::new(0.35 / rise_time, fs)
    }

    /// Processes one sample.
    pub fn step(&mut self, x: f64) -> f64 {
        self.state += self.alpha * (x - self.state);
        self.state
    }

    /// Processes a whole buffer.
    pub fn run(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.step(x)).collect()
    }

    /// Resets internal state to zero.
    pub fn reset(&mut self) {
        self.state = 0.0;
    }
}

/// Simple moving-average smoother over a window of `w` samples (w ≥ 1).
pub fn moving_average(input: &[f64], w: usize) -> Vec<f64> {
    assert!(w >= 1, "window must be at least 1");
    if input.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(input.len());
    let mut acc = 0.0;
    for i in 0..input.len() {
        acc += input[i];
        if i >= w {
            acc -= input[i - w];
        }
        let n = (i + 1).min(w);
        out.push(acc / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    #[test]
    fn fir_lowpass_passes_dc_rejects_high() {
        let f = Fir::lowpass(0.1e6, 1e6, 63);
        assert!((f.response_at(0.0, 1e6) - 1.0).abs() < 1e-6);
        assert!(f.response_at(0.4e6, 1e6) < 0.01);
        // In-band tone survives, out-of-band tone is crushed.
        let inband = Signal::tone(1e6, 0.0, 0.02e6, 1.0, 2000);
        let out = f.apply(&inband.samples);
        let p: f64 = out[500..1500].iter().map(|c| c.norm_sq()).sum::<f64>() / 1000.0;
        assert!((p - 1.0).abs() < 0.05, "in-band power {p}");
        let highband = Signal::tone(1e6, 0.0, 0.45e6, 1.0, 2000);
        let out = f.apply(&highband.samples);
        let p: f64 = out[500..1500].iter().map(|c| c.norm_sq()).sum::<f64>() / 1000.0;
        assert!(p < 1e-3, "out-of-band power {p}");
    }

    #[test]
    fn fir_bandpass_selects_band() {
        let f = Fir::bandpass(50e3, 150e3, 1e6, 127);
        assert!(f.response_at(100e3, 1e6) > 0.9);
        assert!(
            f.response_at(0.0, 1e6) < 0.05,
            "DC leak {}",
            f.response_at(0.0, 1e6)
        );
        assert!(f.response_at(400e3, 1e6) < 0.05);
    }

    #[test]
    fn fir_bandpass_rejects_dc_interference() {
        // Model of the AP chain: DC (clutter) + modulated node signal.
        let fs = 1e6;
        let mut sig = Signal::tone(fs, 0.0, 0.0, 10.0, 4000); // strong DC
        let node = Signal::tone(fs, 0.0, 100e3, 0.1, 4000); // weak node tone
        sig.add(&node);
        let f = Fir::bandpass(50e3, 150e3, fs, 127);
        let out = f.apply(&sig.samples);
        let p: f64 = out[1000..3000].iter().map(|c| c.norm_sq()).sum::<f64>() / 2000.0;
        // Output should be ~ the node power (0.01), not the DC power (100).
        assert!((p - 0.01).abs() < 0.003, "filtered power {p}");
    }

    #[test]
    fn fir_group_delay() {
        assert_eq!(Fir::lowpass(1e3, 1e6, 63).group_delay(), 31.0);
    }

    #[test]
    fn biquad_lowpass_response() {
        let b = Biquad::lowpass(1e3, 48e3);
        assert!((b.response_at(0.0, 48e3) - 1.0).abs() < 1e-9);
        let r = b.response_at(1e3, 48e3);
        assert!(
            (r - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01,
            "-3dB point: {r}"
        );
        assert!(b.response_at(10e3, 48e3) < 0.02);
    }

    #[test]
    fn biquad_highpass_response() {
        let b = Biquad::highpass(1e3, 48e3);
        assert!(b.response_at(0.0, 48e3) < 1e-9);
        assert!(b.response_at(10e3, 48e3) > 0.98);
    }

    #[test]
    fn biquad_bandpass_peak_at_center() {
        let b = Biquad::bandpass(5e3, 48e3, 2.0);
        assert!((b.response_at(5e3, 48e3) - 1.0).abs() < 1e-6);
        assert!(b.response_at(0.0, 48e3) < 1e-9);
        assert!(b.response_at(20e3, 48e3) < 0.3);
    }

    #[test]
    fn biquad_impulse_response_is_stable() {
        let b = Biquad::lowpass(100.0, 48e3);
        let mut imp = vec![0.0; 20_000];
        imp[0] = 1.0;
        let y = b.apply_real(&imp);
        assert!(y[19_999].abs() < 1e-6, "tail {}", y[19_999]);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn one_pole_step_response_rise_time() {
        let fs = 1e9;
        let rise = 10e-9; // 10 ns, like a fast envelope detector
        let mut lp = OnePole::from_rise_time(rise, fs);
        let step = vec![1.0; 100];
        let y = lp.run(&step);
        // Find 10% and 90% crossing times.
        let t10 = y.iter().position(|v| *v >= 0.1).unwrap() as f64 / fs;
        let t90 = y.iter().position(|v| *v >= 0.9).unwrap() as f64 / fs;
        let measured = t90 - t10;
        assert!(
            (measured - rise).abs() < 0.35 * rise,
            "rise time {measured} vs requested {rise}"
        );
    }

    #[test]
    fn one_pole_tracks_dc() {
        let mut lp = OnePole::new(1e6, 1e9);
        let y = lp.run(&vec![2.5; 10_000]);
        assert!((y[9_999] - 2.5).abs() < 1e-6);
        lp.reset();
        assert_eq!(lp.step(0.0), 0.0);
    }

    #[test]
    fn moving_average_smooths() {
        let v = [0.0, 0.0, 4.0, 4.0, 4.0, 4.0];
        let y = moving_average(&v, 4);
        assert_eq!(y[0], 0.0);
        assert_eq!(y[3], 2.0); // window covers samples 0..=3 → (0+0+4+4)/4
        assert_eq!(y[5], 4.0); // window covers samples 2..=5 → all 4.0
        let y = moving_average(&[1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(y, vec![1.0, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let v = [3.0, -1.0, 2.0];
        assert_eq!(moving_average(&v, 1), v.to_vec());
    }
}
