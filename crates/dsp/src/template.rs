//! Cached waveform templates.
//!
//! Packet assembly re-synthesizes the same reference waveforms on every
//! trial: the Field-1 triangular and Field-2 sawtooth chirps of the
//! preamble (paper §8) and the two query tones of the uplink. Synthesis
//! is trigonometry per sample — far more expensive than the memcpy that
//! actually ends up in the packet buffer — so this module memoizes the
//! generated [`Signal`]s in a thread-local cache keyed by the exact
//! synthesis parameters (bit patterns of every `f64` field).
//!
//! Generation is deterministic, so a copied template is bitwise
//! identical to a fresh synthesis; the equivalence tests in
//! `tests/workspace_equivalence.rs` pin that contract.
//!
//! Telemetry: `dsp.template.hit.local` / `dsp.template.miss.local`
//! (per-thread caches, hence `.local` — warm-up counts vary with
//! `MILBACK_THREADS`).

use crate::chirp::ChirpConfig;
use crate::signal::Signal;
use milback_telemetry as telemetry;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Exact-parameter template identity. `f64` fields are keyed by their
/// bit patterns: configs that differ by any ULP synthesize separately,
/// which is what bitwise reproducibility demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Sawtooth {
        f_start: u64,
        f_stop: u64,
        duration: u64,
        fs: u64,
        amplitude: u64,
    },
    Triangular {
        f_start: u64,
        f_stop: u64,
        duration: u64,
        fs: u64,
        amplitude: u64,
    },
    Tone {
        fs: u64,
        fc: u64,
        f_off: u64,
        amp: u64,
        n: usize,
    },
}

/// Bound on distinct cached templates per thread. Real workloads use a
/// handful of chirp configs and tone lengths; the bound only exists so a
/// pathological caller (e.g. a sweep over payload sizes) cannot grow the
/// cache without limit.
const MAX_TEMPLATES: usize = 64;

thread_local! {
    static TEMPLATES: RefCell<HashMap<Key, Rc<Signal>>> = RefCell::new(HashMap::new());
}

fn chirp_key(cfg: &ChirpConfig, triangular: bool) -> Key {
    let (f_start, f_stop, duration, fs, amplitude) = (
        cfg.f_start.to_bits(),
        cfg.f_stop.to_bits(),
        cfg.duration.to_bits(),
        cfg.fs.to_bits(),
        cfg.amplitude.to_bits(),
    );
    if triangular {
        Key::Triangular {
            f_start,
            f_stop,
            duration,
            fs,
            amplitude,
        }
    } else {
        Key::Sawtooth {
            f_start,
            f_stop,
            duration,
            fs,
            amplitude,
        }
    }
}

fn lookup(key: Key, synth: impl FnOnce() -> Signal) -> Rc<Signal> {
    TEMPLATES.with(|t| {
        let mut map = t.borrow_mut();
        if let Some(s) = map.get(&key) {
            telemetry::counter_add("dsp.template.hit.local", 1);
            return s.clone();
        }
        telemetry::counter_add("dsp.template.miss.local", 1);
        if map.len() >= MAX_TEMPLATES {
            // Full flush on overflow: templates are cheap to rebuild and
            // overflow means the workload isn't template-shaped anyway.
            map.clear();
        }
        let s = Rc::new(synth());
        map.insert(key, s.clone());
        s
    })
}

/// The cached sawtooth chirp for `cfg` (synthesized on first use).
pub fn sawtooth(cfg: &ChirpConfig) -> Rc<Signal> {
    lookup(chirp_key(cfg, false), || cfg.sawtooth())
}

/// The cached triangular chirp for `cfg` (synthesized on first use).
pub fn triangular(cfg: &ChirpConfig) -> Rc<Signal> {
    lookup(chirp_key(cfg, true), || cfg.triangular())
}

/// The cached constant tone matching
/// [`Signal::tone`]`(fs, fc, f_off, amp, n)`.
pub fn tone(fs: f64, fc: f64, f_off: f64, amp: f64, n: usize) -> Rc<Signal> {
    let key = Key::Tone {
        fs: fs.to_bits(),
        fc: fc.to_bits(),
        f_off: f_off.to_bits(),
        amp: amp.to_bits(),
        n,
    };
    lookup(key, || Signal::tone(fs, fc, f_off, amp, n))
}

/// Number of templates currently cached on this thread (diagnostics).
pub fn cached_count() -> usize {
    TEMPLATES.with(|t| t.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chirp_templates_match_fresh_synthesis_bitwise() {
        let cfg = ChirpConfig {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 2e-6,
            fs: 3.2e9,
            amplitude: 0.7,
        };
        assert_eq!(*sawtooth(&cfg), cfg.sawtooth());
        assert_eq!(*triangular(&cfg), cfg.triangular());
        // Hits return the same allocation, not a re-synthesis.
        assert!(Rc::ptr_eq(&sawtooth(&cfg), &sawtooth(&cfg)));
    }

    #[test]
    fn tone_template_matches_fresh_synthesis_bitwise() {
        let t = tone(200e6, 28e9, -5e6, 0.3, 1024);
        assert_eq!(*t, Signal::tone(200e6, 28e9, -5e6, 0.3, 1024));
    }

    #[test]
    fn distinct_configs_get_distinct_templates() {
        std::thread::spawn(|| {
            let a = tone(1e6, 0.0, 1e3, 1.0, 16);
            let b = tone(1e6, 0.0, 2e3, 1.0, 16);
            assert_ne!(*a, *b);
            assert_eq!(cached_count(), 2);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn overflow_flushes_but_stays_correct() {
        std::thread::spawn(|| {
            for n in 1..=(MAX_TEMPLATES + 8) {
                let t = tone(1e6, 0.0, 1e3, 1.0, n);
                assert_eq!(t.len(), n);
            }
            assert!(cached_count() <= MAX_TEMPLATES);
            // Post-flush lookups still return correct waveforms.
            let t = tone(1e6, 0.0, 1e3, 1.0, 4);
            assert_eq!(*t, Signal::tone(1e6, 0.0, 1e3, 1.0, 4));
        })
        .join()
        .unwrap();
    }
}
