//! Opt-in f32 FFT tier for sweep workloads ([`Fft32Plan`]).
//!
//! Coverage surveys and coarse range sweeps only need magnitude spectra
//! to a few parts in 1e5 — far looser than the f64 pipeline's bitwise
//! contract. This plan mirrors [`crate::plan::FftPlan`]'s structure
//! (stage-major twiddles, bit-reversed gather, fused radix-4 passes,
//! L1 tiling) on [`Cpx32`] samples: half the memory traffic per
//! butterfly and twice the lanes per SIMD register.
//!
//! It is **not** a bitwise path and nothing routes through it by
//! default: callers opt in via `Fidelity::Sweep` in `milback_ap` (or by
//! using the plan directly), and the tier is gated by an accuracy-bound
//! test in the spirit of the phasor `<4e-13` bound: for unit-scale
//! inputs up to 16384 points, every bin of the f32 spectrum stays
//! within `1e-4 · max|X|` of the f64 reference (measured headroom is
//! ~20×; see `accuracy_bound_versus_f64`). Twiddles are computed in f64
//! and narrowed, so the tier's only error sources are the f32 butterfly
//! arithmetic and the input narrowing itself.

use crate::num32::{Cpx32, ZERO32};
use milback_telemetry as telemetry;
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

/// A reusable radix-2/radix-4 FFT plan over `f32` complex samples.
#[derive(Debug, Clone)]
pub struct Fft32Plan {
    n: usize,
    /// Stage-major twiddles, computed at f64 precision and narrowed.
    twiddles: Vec<Cpx32>,
    /// Bit-reversal permutation of `0..n`.
    bitrev: Vec<u32>,
}

impl Fft32Plan {
    /// Butterfly tile size in complex elements (8 KiB of `Cpx32`).
    const TILE: usize = 1024;

    /// Builds a plan for power-of-two length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            crate::fft::is_pow2(n),
            "Fft32Plan requires a power-of-two length, got {n}"
        );
        assert!(n <= u32::MAX as usize, "FFT length {n} too large for plan");
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            for k in 0..len / 2 {
                let c = crate::num::Cpx::cis(-2.0 * PI * k as f64 / len as f64);
                twiddles.push(Cpx32::from_f64(c));
            }
            len <<= 1;
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Self {
            n,
            twiddles,
            bitrev,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this is the trivial length-0/1 plan.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place unnormalized forward DFT.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward_in_place(&self, data: &mut [Cpx32]) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        if self.n <= 1 {
            return;
        }
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        self.butterflies(data);
    }

    /// Forward DFT into a caller-owned buffer via the bit-reversed
    /// gather (no copy-then-swap pass); capacity is reused, so a warmed
    /// call performs no heap allocation.
    pub fn forward_into(&self, input: &[Cpx32], out: &mut Vec<Cpx32>) {
        assert_eq!(input.len(), self.n, "buffer length != plan length");
        crate::buffer::track_growth(out, self.n);
        out.clear();
        if self.n <= 1 {
            out.extend_from_slice(input);
            return;
        }
        out.extend(self.bitrev.iter().map(|&j| input[j as usize]));
        self.butterflies(out);
    }

    /// Narrow-and-transform convenience for sweep callers holding f64
    /// pipeline data: gathers `input` bit-reversed while narrowing, then
    /// runs the f32 butterflies. Zero steady-state allocation.
    pub fn forward_narrow_into(&self, input: &[crate::num::Cpx], out: &mut Vec<Cpx32>) {
        assert_eq!(input.len(), self.n, "buffer length != plan length");
        crate::buffer::track_growth(out, self.n);
        out.clear();
        if self.n <= 1 {
            out.extend(input.iter().map(|&c| Cpx32::from_f64(c)));
            return;
        }
        out.extend(
            self.bitrev
                .iter()
                .map(|&j| Cpx32::from_f64(input[j as usize])),
        );
        self.butterflies(out);
    }

    fn butterflies(&self, data: &mut [Cpx32]) {
        let n = self.n;
        if n > Self::TILE {
            for chunk in data.chunks_exact_mut(Self::TILE) {
                self.stages(chunk, 2, Self::TILE);
            }
            self.stages(data, 2 * Self::TILE, n);
        } else {
            self.stages(data, 2, n);
        }
    }

    fn stages(&self, data: &mut [Cpx32], from_len: usize, to_len: usize) {
        let n_stages = (to_len.trailing_zeros() + 1 - from_len.trailing_zeros()) as usize;
        let mut len = from_len;
        if n_stages % 2 == 1 {
            self.radix2_stage(data, len);
            len <<= 1;
        }
        while len <= to_len {
            self.radix4_pair(data, len);
            len <<= 2;
        }
    }

    fn radix2_stage(&self, data: &mut [Cpx32], len: usize) {
        let half = len / 2;
        let tw = &self.twiddles[half - 1..len - 1];
        // AVX path: four complex pairs per vector, bitwise identical to
        // the scalar loop below (see crate::simd module docs).
        #[cfg(target_arch = "x86_64")]
        if half >= 4 && crate::simd::avx_available() {
            // SAFETY: AVX checked above; `half` is a multiple of 4, data
            // length is a multiple of `len`, `tw` has `half` twiddles.
            unsafe { crate::simd::radix2_stage_ps(data, tw, len) };
            return;
        }
        for block in data.chunks_exact_mut(len) {
            let (lo, hi) = block.split_at_mut(half);
            for ((u, v), t) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
                let a = *u;
                let b = *v * *t;
                *u = a + b;
                *v = a - b;
            }
        }
    }

    fn radix4_pair(&self, data: &mut [Cpx32], len: usize) {
        let half = len / 2;
        let twa = &self.twiddles[half - 1..len - 1];
        let twb = &self.twiddles[len - 1..2 * len - 1];
        let (tb_lo, tb_hi) = twb.split_at(half);
        // AVX path — bitwise identical (crate::simd module docs).
        #[cfg(target_arch = "x86_64")]
        if half >= 4 && crate::simd::avx_available() {
            // SAFETY: AVX checked above; `half` is a multiple of 4, data
            // length is a multiple of `2·len`, twiddle slices have
            // `half` elements each.
            unsafe { crate::simd::radix4_pair_ps(data, twa, tb_lo, tb_hi, len) };
            return;
        }
        for block in data.chunks_exact_mut(2 * len) {
            let (x01, x23) = block.split_at_mut(len);
            let (x0, x1) = x01.split_at_mut(half);
            let (x2, x3) = x23.split_at_mut(half);
            for k in 0..half {
                let ta = twa[k];
                let u0 = x0[k];
                let v0 = x1[k] * ta;
                let u1 = x2[k];
                let v1 = x3[k] * ta;
                let a = u0 + v0;
                let c = u0 - v0;
                let e = u1 + v1;
                let g = u1 - v1;
                let eb = e * tb_lo[k];
                let gb = g * tb_hi[k];
                x0[k] = a + eb;
                x2[k] = a - eb;
                x1[k] = c + gb;
                x3[k] = c - gb;
            }
        }
    }
}

thread_local! {
    static PLAN32_CACHE: RefCell<HashMap<usize, Rc<Fft32Plan>>> = RefCell::new(HashMap::new());
}

/// Runs `f` with the cached f32 plan for length `n`, building it on
/// first use (per thread, like [`crate::plan::with_plan`]).
///
/// # Panics
/// Panics if `n` is not a power of two.
pub fn with_plan32<R>(n: usize, f: impl FnOnce(&Fft32Plan) -> R) -> R {
    let plan = PLAN32_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(p) = cache.get(&n) {
            telemetry::counter_add("dsp.plan_cache.hit.local", 1);
            p.clone()
        } else {
            telemetry::counter_add("dsp.plan_cache.miss.local", 1);
            let p = Rc::new(Fft32Plan::new(n));
            cache.insert(n, p.clone());
            p
        }
    });
    f(&plan)
}

/// Scratch zero so callers can resize f32 buffers without importing
/// the num32 module.
pub const ZERO: Cpx32 = ZERO32;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::Cpx;

    fn ramp64(n: usize) -> Vec<Cpx> {
        (0..n)
            .map(|i| Cpx::cis(i as f64 * 0.217) * (0.25 + (i % 7) as f64 * 0.1))
            .collect()
    }

    /// The tier's documented accuracy gate: every bin within
    /// `1e-4 · max|X|` of the f64 reference for unit-scale inputs up to
    /// 16384 points. (Measured error is ~5e-6 at 16384; the bound
    /// leaves ~20× headroom so it fails only on real regressions.)
    #[test]
    fn accuracy_bound_versus_f64() {
        for n in [64usize, 1024, 16384] {
            let x = ramp64(n);
            let reference = crate::fft::fft(&x);
            let peak = reference.iter().map(|c| c.abs()).fold(0.0f64, f64::max);

            let plan = Fft32Plan::new(n);
            let mut out = Vec::new();
            plan.forward_narrow_into(&x, &mut out);

            let worst = reference
                .iter()
                .zip(&out)
                .map(|(r, g)| (*r - g.to_f64()).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst <= 1e-4 * peak,
                "n={n}: worst abs error {worst:.3e} vs bound {:.3e}",
                1e-4 * peak
            );
        }
    }

    #[test]
    fn forward_into_matches_in_place() {
        let n = 2048;
        let x64 = ramp64(n);
        let x: Vec<Cpx32> = x64.iter().map(|&c| Cpx32::from_f64(c)).collect();
        let plan = Fft32Plan::new(n);
        let mut in_place = x.clone();
        plan.forward_in_place(&mut in_place);
        let mut out = Vec::new();
        for _ in 0..2 {
            plan.forward_into(&x, &mut out);
            assert_eq!(in_place, out);
        }
        // Narrowing gather agrees with narrow-then-transform.
        let mut narrowed = Vec::new();
        plan.forward_narrow_into(&x64, &mut narrowed);
        assert_eq!(in_place, narrowed);
    }

    #[test]
    fn cache_reuses_plans() {
        std::thread::spawn(|| {
            let x: Vec<Cpx32> = (0..64).map(|i| Cpx32::new(i as f32, 0.0)).collect();
            let a = with_plan32(64, |p| {
                let mut v = x.clone();
                p.forward_in_place(&mut v);
                v
            });
            let b = with_plan32(64, |p| {
                let mut v = x.clone();
                p.forward_in_place(&mut v);
                v
            });
            assert_eq!(a, b);
        })
        .join()
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_rejected() {
        let _ = Fft32Plan::new(12);
    }
}
