//! Complex-baseband signal container.
//!
//! All RF waveforms in MilBack — FMCW chirps, OAQFM tones, backscattered
//! reflections — are represented as [`Signal`]: a vector of complex samples
//! at sample rate `fs`, understood as the complex envelope of a real RF
//! signal centered at carrier frequency `fc`. A baseband tone at offset `Δf`
//! therefore represents RF energy at `fc + Δf`.
//!
//! The representation covers `fc − fs/2 .. fc + fs/2`, so a 3 GHz-wide FMCW
//! sweep needs `fs ≥ 3 GHz`. Chirps in MilBack are tens of microseconds, so
//! buffers stay in the 10⁴–10⁵ sample range — cheap to process.

use crate::num::{Cpx, ZERO};

/// A complex-baseband waveform: samples at rate `fs`, relative to RF carrier
/// `fc`.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    /// Sample rate in Hz.
    pub fs: f64,
    /// RF carrier (center) frequency in Hz that the baseband is relative to.
    pub fc: f64,
    /// Complex envelope samples.
    pub samples: Vec<Cpx>,
}

impl Signal {
    /// Creates a signal from raw samples.
    pub fn new(fs: f64, fc: f64, samples: Vec<Cpx>) -> Self {
        assert!(fs > 0.0, "sample rate must be positive");
        Self { fs, fc, samples }
    }

    /// An all-zero signal of `n` samples.
    pub fn zeros(fs: f64, fc: f64, n: usize) -> Self {
        Self::new(fs, fc, vec![ZERO; n])
    }

    /// A constant-amplitude complex tone at baseband offset `f_off` Hz
    /// (RF frequency `fc + f_off`), amplitude `amp`, `n` samples.
    ///
    /// Evaluated with the phasor recurrence of [`crate::phasor`]: every
    /// 64th sample is bitwise identical to a direct
    /// `Cpx::from_polar(amp, w·t)` loop and the rest differ by less than
    /// 4×10⁻¹³ relative (DESIGN.md §13).
    pub fn tone(fs: f64, fc: f64, f_off: f64, amp: f64, n: usize) -> Self {
        let w = 2.0 * std::f64::consts::PI * f_off / fs;
        let mut samples = vec![ZERO; n];
        crate::phasor::fill_linear(amp, 0.0, w, &mut samples);
        Self::new(fs, fc, samples)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the signal holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.len() as f64 / self.fs
    }

    /// Time of sample `i` in seconds.
    pub fn time_of(&self, i: usize) -> f64 {
        i as f64 / self.fs
    }

    /// Mean power of the envelope: `mean(|x|²)`. With the convention that
    /// the envelope is in volts across 1 Ω, this is watts.
    pub fn power(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|c| c.norm_sq()).sum::<f64>() / self.len() as f64
    }

    /// Total energy: `Σ|x|² / fs` (power × duration).
    pub fn energy(&self) -> f64 {
        self.samples.iter().map(|c| c.norm_sq()).sum::<f64>() / self.fs
    }

    /// Scales every sample by a real factor.
    pub fn scale(&mut self, k: f64) {
        for c in self.samples.iter_mut() {
            *c *= k;
        }
    }

    /// Multiplies every sample by a complex factor (e.g. a channel phase).
    pub fn rotate(&mut self, phasor: Cpx) {
        for c in self.samples.iter_mut() {
            *c *= phasor;
        }
    }

    /// Scales the signal power by `gain_db` decibels (amplitude by
    /// `gain_db/20`).
    pub fn scale_db(&mut self, gain_db: f64) {
        self.scale(10f64.powf(gain_db / 20.0));
    }

    /// Adds another signal sample-wise. The two signals must share `fs` and
    /// `fc`; the shorter one is treated as zero-padded.
    pub fn add(&mut self, other: &Signal) {
        assert_eq!(self.fs, other.fs, "sample-rate mismatch in Signal::add");
        assert_eq!(self.fc, other.fc, "carrier mismatch in Signal::add");
        if other.len() > self.len() {
            self.samples.resize(other.len(), ZERO);
        }
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            *a += *b;
        }
    }

    /// Point-wise product with the conjugate of `other` — the dechirp /
    /// correlation primitive (`x · y*`). Truncates to the shorter length.
    pub fn conj_multiply(&self, other: &Signal) -> Signal {
        assert_eq!(self.fs, other.fs, "sample-rate mismatch in conj_multiply");
        let n = self.len().min(other.len());
        let samples = (0..n)
            .map(|i| self.samples[i] * other.samples[i].conj())
            .collect();
        Signal::new(self.fs, self.fc, samples)
    }

    /// Point-wise product (mixer): `x · y`. Truncates to the shorter length.
    pub fn multiply(&self, other: &Signal) -> Signal {
        assert_eq!(self.fs, other.fs, "sample-rate mismatch in multiply");
        let n = self.len().min(other.len());
        let samples = (0..n).map(|i| self.samples[i] * other.samples[i]).collect();
        Signal::new(self.fs, self.fc, samples)
    }

    /// Extracts samples `[start, start+n)`, clamped to the signal length.
    pub fn segment(&self, start: usize, n: usize) -> Signal {
        let s = start.min(self.len());
        let e = (start + n).min(self.len());
        Signal::new(self.fs, self.fc, self.samples[s..e].to_vec())
    }

    /// Delays the signal by `tau` seconds using linear interpolation,
    /// zero-filling the beginning. The output has the same length — samples
    /// pushed past the end are dropped. This models propagation delay of the
    /// *envelope*; the accompanying carrier phase rotation
    /// `exp(-j2π·fc·tau)` must be applied separately (the channel does it).
    ///
    /// ## Leading-edge convention
    ///
    /// Output sample `i` interpolates between input samples `j−1` and `j`
    /// (`j = i − ⌊τ·fs⌋`). At `j == 0` there is no `j−1` sample, so the
    /// kernel interpolates against an **implicit zero**: with fractional
    /// shift `frac`, the first live output sample is
    /// `x[0]·(1 − frac)` — deliberately attenuated, as if the waveform
    /// ramped up from silence. This models a signal that was *off* before
    /// its first sample (true for every chirp/tone the simulator emits)
    /// rather than extrapolating the leading edge. All delay kernels
    /// ([`Signal::delayed_into`], [`Signal::accumulate_delayed`],
    /// [`Signal::delay_in_place`]) share this convention bitwise; the unit
    /// test `fractional_delay_attenuates_leading_edge` pins it.
    pub fn delayed(&self, tau: f64) -> Signal {
        let mut out = Signal::zeros(self.fs, self.fc, self.len());
        self.delayed_into(tau, &mut out.samples);
        out
    }

    /// Allocation-free [`Signal::delayed`]: writes the delayed envelope
    /// into `out`, resizing it to `self.len()`. Bitwise identical to
    /// `delayed` (same interpolation expression and leading-edge
    /// convention).
    pub fn delayed_into(&self, tau: f64, out: &mut Vec<Cpx>) {
        assert!(tau >= 0.0, "delay must be non-negative");
        let (whole, frac) = self.split_shift(tau);
        let n = self.len();
        crate::buffer::track_growth(out, n);
        out.resize(n, ZERO);
        for (i, slot) in out.iter_mut().enumerate() {
            if i < whole {
                *slot = ZERO;
                continue;
            }
            let j = i - whole;
            // Linearly interpolate between samples j-1 and j, offset by frac.
            let a = if j == 0 { ZERO } else { self.samples[j - 1] };
            let b = self.samples[j];
            *slot = a * frac + b * (1.0 - frac);
        }
    }

    /// Accumulates a delayed, coefficient-scaled copy of this signal:
    /// `acc[i] += delayed(τ)[i] · coeff`, without materializing the
    /// delayed waveform. The per-sample expression matches
    /// `self.delayed(tau)` followed by a scaled add bitwise — this is the
    /// zero-allocation ray-accumulation kernel of the channel synthesizer
    /// (DESIGN.md §13). `acc` must be at least `self.len()` long.
    pub fn accumulate_delayed(&self, tau: f64, coeff: Cpx, acc: &mut [Cpx]) {
        assert!(tau >= 0.0, "delay must be non-negative");
        assert!(acc.len() >= self.len(), "accumulator shorter than signal");
        let (whole, frac) = self.split_shift(tau);
        for (i, slot) in acc.iter_mut().enumerate().take(self.len()).skip(whole) {
            let j = i - whole;
            let a = if j == 0 { ZERO } else { self.samples[j - 1] };
            let b = self.samples[j];
            *slot += (a * frac + b * (1.0 - frac)) * coeff;
        }
    }

    /// In-place [`Signal::delayed`]: replaces this signal's samples with
    /// their delayed version, bitwise identical to `delayed` but without
    /// allocating. Walks indices descending so each output sample reads
    /// only not-yet-overwritten inputs (`j ≤ i`).
    pub fn delay_in_place(&mut self, tau: f64) {
        assert!(tau >= 0.0, "delay must be non-negative");
        let (whole, frac) = self.split_shift(tau);
        for i in (0..self.len()).rev() {
            if i < whole {
                self.samples[i] = ZERO;
                continue;
            }
            let j = i - whole;
            let a = if j == 0 { ZERO } else { self.samples[j - 1] };
            let b = self.samples[j];
            self.samples[i] = a * frac + b * (1.0 - frac);
        }
    }

    /// Splits a delay into whole-sample and fractional parts — the shared
    /// arithmetic of every delay kernel, kept in one place so they cannot
    /// diverge bitwise.
    fn split_shift(&self, tau: f64) -> (usize, f64) {
        let shift = tau * self.fs;
        let whole = shift.floor() as usize;
        (whole, shift - shift.floor())
    }

    /// Shifts the baseband spectrum by `f_shift` Hz (multiplies by a complex
    /// exponential). Used to re-center a signal on a different carrier.
    pub fn freq_shift(&mut self, f_shift: f64) {
        let w = 2.0 * std::f64::consts::PI * f_shift / self.fs;
        for (t, c) in self.samples.iter_mut().enumerate() {
            *c *= Cpx::cis(w * t as f64);
        }
    }

    /// Overwrites this signal with a copy of `other`, reusing the
    /// existing sample buffer's capacity — the allocation-free
    /// counterpart of `other.clone()` for template-backed packet
    /// assembly (see `milback_dsp::template`).
    pub fn copy_from(&mut self, other: &Signal) {
        self.fs = other.fs;
        self.fc = other.fc;
        crate::buffer::copy_into(&other.samples, &mut self.samples);
    }

    /// Concatenates another signal after this one (same `fs`/`fc`).
    pub fn append(&mut self, other: &Signal) {
        assert_eq!(self.fs, other.fs, "sample-rate mismatch in append");
        assert_eq!(self.fc, other.fc, "carrier mismatch in append");
        self.samples.extend_from_slice(&other.samples);
    }

    /// The envelope magnitude `|x[n]|` of every sample.
    pub fn magnitude(&self) -> Vec<f64> {
        self.samples.iter().map(|c| c.abs()).collect()
    }

    /// Instantaneous power `|x[n]|²` of every sample.
    pub fn inst_power(&self) -> Vec<f64> {
        self.samples.iter().map(|c| c.norm_sq()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tone_has_unit_power() {
        let s = Signal::tone(1e6, 28e9, 1e3, 1.0, 1000);
        assert!((s.power() - 1.0).abs() < 1e-12);
        assert!((s.duration() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn tone_frequency_is_correct() {
        let fs = 1e6;
        let f = 12_000.0;
        let s = Signal::tone(fs, 0.0, f, 1.0, 4096);
        let spec = crate::fft::power_spectrum(&s.samples);
        let peak_bin = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let freqs = crate::fft::fft_freqs(4096, fs);
        assert!((freqs[peak_bin] - f).abs() < fs / 4096.0);
    }

    #[test]
    fn scale_db_changes_power() {
        let mut s = Signal::tone(1e6, 0.0, 0.0, 1.0, 100);
        s.scale_db(-20.0);
        assert!((s.power() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn add_pads_shorter_signal() {
        let mut a = Signal::zeros(1e6, 0.0, 5);
        let b = Signal::tone(1e6, 0.0, 0.0, 1.0, 10);
        a.add(&b);
        assert_eq!(a.len(), 10);
        assert!((a.samples[7].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integer_delay_shifts_samples() {
        let fs = 1e6;
        let mut s = Signal::zeros(fs, 0.0, 10);
        s.samples[0] = Cpx::new(1.0, 0.0);
        let d = s.delayed(3.0 / fs);
        assert!(d.samples[3].abs() > 0.99);
        assert!(d.samples[0].abs() < 1e-12);
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn fractional_delay_interpolates() {
        let fs = 1e6;
        // A linear ramp delays exactly under linear interpolation.
        let samples: Vec<Cpx> = (0..10).map(|i| Cpx::new(i as f64, 0.0)).collect();
        let s = Signal::new(fs, 0.0, samples);
        let d = s.delayed(0.5 / fs);
        // d[i] should be i - 0.5 for i >= 1.
        for i in 1..10 {
            assert!((d.samples[i].re - (i as f64 - 0.5)).abs() < 1e-9);
        }
    }

    /// Pins the documented leading-edge convention of `delayed`: at
    /// `j == 0` with a fractional shift the kernel interpolates against
    /// an implicit zero, so the first live output sample is attenuated
    /// to `x[0]·(1 − frac)`.
    #[test]
    fn fractional_delay_attenuates_leading_edge() {
        let fs = 1e6;
        let samples: Vec<Cpx> = (1..=8).map(|i| Cpx::new(i as f64, 0.0)).collect();
        let s = Signal::new(fs, 0.0, samples);
        let frac = 0.25;
        let d = s.delayed(frac / fs);
        // First live sample: 0·frac + x[0]·(1−frac) = 1·0.75.
        assert_eq!(d.samples[0].re.to_bits(), (1.0 * (1.0 - frac)).to_bits());
        assert_eq!(d.samples[0].im.to_bits(), 0.0f64.to_bits());
        // Interior samples interpolate between live neighbours.
        assert!((d.samples[3].re - (3.0 * frac + 4.0 * (1.0 - frac))).abs() < 1e-12);
        // With a whole+fractional shift the convention applies at j == 0
        // of the shifted frame.
        let d2 = s.delayed((2.0 + frac) / fs);
        assert_eq!(d2.samples[2].re.to_bits(), (1.0 * (1.0 - frac)).to_bits());
        assert!(d2.samples[0].abs() == 0.0 && d2.samples[1].abs() == 0.0);
    }

    /// All delay kernels share one interpolation expression — pin them
    /// bitwise against `delayed` for whole, fractional and mixed shifts.
    #[test]
    fn delay_kernels_match_delayed_bitwise() {
        let fs = 2e9;
        let samples: Vec<Cpx> = (0..64)
            .map(|i| Cpx::from_polar(1.0 + 0.01 * i as f64, 0.37 * i as f64))
            .collect();
        let s = Signal::new(fs, 28e9, samples);
        let coeff = Cpx::new(0.8, -0.3);
        for tau in [0.0, 0.5 / fs, 3.0 / fs, 7.31 / fs] {
            let reference = s.delayed(tau);

            let mut out = vec![Cpx::new(9.0, 9.0); 3];
            s.delayed_into(tau, &mut out);
            assert_eq!(out.len(), reference.len());

            // accumulate_delayed(acc=0) must equal delayed()·coeff with
            // the same operation order.
            let mut acc = vec![ZERO; s.len()];
            s.accumulate_delayed(tau, coeff, &mut acc);
            let mut inplace = s.clone();
            inplace.delay_in_place(tau);
            for i in 0..s.len() {
                assert_eq!(out[i].re.to_bits(), reference.samples[i].re.to_bits());
                assert_eq!(out[i].im.to_bits(), reference.samples[i].im.to_bits());
                assert_eq!(
                    inplace.samples[i].re.to_bits(),
                    reference.samples[i].re.to_bits()
                );
                assert_eq!(
                    inplace.samples[i].im.to_bits(),
                    reference.samples[i].im.to_bits()
                );
                let want = reference.samples[i] * coeff;
                assert_eq!(acc[i].re.to_bits(), want.re.to_bits());
                assert_eq!(acc[i].im.to_bits(), want.im.to_bits());
            }
        }
    }

    #[test]
    fn tone_anchors_match_direct_from_polar() {
        let (fs, f_off, amp, n) = (4e9, 150e6, 1.4, 300);
        let s = Signal::tone(fs, 28e9, f_off, amp, n);
        let w = 2.0 * std::f64::consts::PI * f_off / fs;
        for t in (0..n).step_by(crate::phasor::CHECKPOINT) {
            let want = Cpx::from_polar(amp, w * t as f64);
            assert_eq!(s.samples[t].re.to_bits(), want.re.to_bits());
            assert_eq!(s.samples[t].im.to_bits(), want.im.to_bits());
        }
        for (t, c) in s.samples.iter().enumerate() {
            let want = Cpx::from_polar(amp, w * t as f64);
            assert!((*c - want).abs() < 4e-13 * amp, "t={t}");
        }
    }

    #[test]
    fn conj_multiply_of_tone_gives_dc() {
        let s = Signal::tone(1e6, 0.0, 5e3, 2.0, 256);
        let p = s.conj_multiply(&s);
        for c in &p.samples {
            assert!((c.re - 4.0).abs() < 1e-9);
            assert!(c.im.abs() < 1e-9);
        }
    }

    #[test]
    fn mixer_multiply_sums_frequencies() {
        let fs = 1e6;
        let a = Signal::tone(fs, 0.0, 3e3, 1.0, 4096);
        let b = Signal::tone(fs, 0.0, 4e3, 1.0, 4096);
        let m = a.multiply(&b);
        let spec = crate::fft::power_spectrum(&m.samples);
        let peak_bin = spec
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        let freqs = crate::fft::fft_freqs(4096, fs);
        assert!((freqs[peak_bin] - 7e3).abs() < fs / 4096.0);
    }

    #[test]
    fn freq_shift_moves_tone() {
        let fs = 1e6;
        let mut s = Signal::tone(fs, 0.0, 1e4, 1.0, 4096);
        s.freq_shift(2e4);
        let spec = crate::fft::power_spectrum(&s.samples);
        let peak_bin = spec
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        let freqs = crate::fft::fft_freqs(4096, fs);
        assert!((freqs[peak_bin] - 3e4).abs() < fs / 4096.0);
    }

    #[test]
    fn segment_clamps() {
        let s = Signal::tone(1e6, 0.0, 0.0, 1.0, 10);
        assert_eq!(s.segment(8, 10).len(), 2);
        assert_eq!(s.segment(20, 10).len(), 0);
        assert_eq!(s.segment(2, 3).len(), 3);
    }

    #[test]
    fn append_concatenates() {
        let mut a = Signal::tone(1e6, 0.0, 0.0, 1.0, 4);
        let b = Signal::zeros(1e6, 0.0, 6);
        a.append(&b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn energy_is_power_times_duration() {
        let s = Signal::tone(2e6, 0.0, 1e3, 3.0, 2000);
        assert!((s.energy() - s.power() * s.duration()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample-rate mismatch")]
    fn add_rejects_rate_mismatch() {
        let mut a = Signal::zeros(1e6, 0.0, 4);
        let b = Signal::zeros(2e6, 0.0, 4);
        a.add(&b);
    }
}
