//! Rate conversion: decimation with anti-alias filtering and arbitrary-time
//! sampling.
//!
//! The node's MCU samples the envelope-detector outputs at 1 MHz while the
//! RF-level simulation runs at GS/s rates; this module bridges the two.

use crate::filter::Fir;
use crate::num::Cpx;
use crate::signal::Signal;

/// Decimates a complex signal by integer factor `m` after an anti-alias
/// low-pass at 80% of the new Nyquist frequency.
pub fn decimate(sig: &Signal, m: usize) -> Signal {
    assert!(m >= 1, "decimation factor must be >= 1");
    if m == 1 {
        return sig.clone();
    }
    let new_fs = sig.fs / m as f64;
    let fir = Fir::lowpass(0.4 * new_fs, sig.fs, 63);
    let filtered = fir.apply(&sig.samples);
    let samples: Vec<Cpx> = filtered.iter().step_by(m).copied().collect();
    Signal::new(new_fs, sig.fc, samples)
}

/// Decimates a real-valued sequence by integer factor `m` with a moving
/// average of length `m` as the anti-alias filter (the natural model of an
/// ADC that integrates over its sample period).
pub fn decimate_real_avg(input: &[f64], m: usize) -> Vec<f64> {
    assert!(m >= 1, "decimation factor must be >= 1");
    if m == 1 {
        return input.to_vec();
    }
    input
        .chunks(m)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Samples a real sequence (at rate `fs`) at arbitrary time `t` seconds by
/// linear interpolation. Returns 0 outside the sequence.
pub fn sample_at(input: &[f64], fs: f64, t: f64) -> f64 {
    if input.is_empty() || t < 0.0 {
        return 0.0;
    }
    let x = t * fs;
    let i = x.floor() as usize;
    if i + 1 >= input.len() {
        return if i < input.len() { input[i] } else { 0.0 };
    }
    let frac = x - i as f64;
    input[i] * (1.0 - frac) + input[i + 1] * frac
}

/// Resamples a real sequence from rate `fs_in` to rate `fs_out` by linear
/// interpolation (no anti-alias filter — intended for upsampling or for
/// already-smooth envelopes).
pub fn resample_linear(input: &[f64], fs_in: f64, fs_out: f64) -> Vec<f64> {
    assert!(fs_in > 0.0 && fs_out > 0.0, "rates must be positive");
    if input.is_empty() {
        return Vec::new();
    }
    let duration = input.len() as f64 / fs_in;
    let n_out = (duration * fs_out).floor() as usize;
    (0..n_out)
        .map(|i| sample_at(input, fs_in, i as f64 / fs_out))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimate_keeps_low_frequency_tone() {
        let fs = 1e6;
        let s = Signal::tone(fs, 0.0, 5e3, 1.0, 8000);
        let d = decimate(&s, 10);
        assert_eq!(d.fs, 1e5);
        assert_eq!(d.len(), 800);
        // Power preserved for an in-band tone (away from filter edges).
        let p: f64 = d.samples[100..700].iter().map(|c| c.norm_sq()).sum::<f64>() / 600.0;
        assert!((p - 1.0).abs() < 0.05, "power {p}");
    }

    #[test]
    fn decimate_suppresses_aliasing_tone() {
        let fs = 1e6;
        // 90 kHz tone would alias to 10 kHz after /10 decimation (Nyquist 50 kHz).
        let s = Signal::tone(fs, 0.0, 90e3, 1.0, 8000);
        let d = decimate(&s, 10);
        let p: f64 = d.samples[100..700].iter().map(|c| c.norm_sq()).sum::<f64>() / 600.0;
        assert!(p < 0.02, "aliased power {p}");
    }

    #[test]
    fn decimate_by_one_is_identity() {
        let s = Signal::tone(1e6, 0.0, 1e3, 1.0, 100);
        assert_eq!(decimate(&s, 1), s);
    }

    #[test]
    fn decimate_real_averages_blocks() {
        let v = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(decimate_real_avg(&v, 2), vec![2.0, 6.0, 9.0]);
        assert_eq!(decimate_real_avg(&v, 1), v.to_vec());
    }

    #[test]
    fn sample_at_interpolates() {
        let v = [0.0, 10.0, 20.0];
        assert_eq!(sample_at(&v, 1.0, 0.5), 5.0);
        assert_eq!(sample_at(&v, 1.0, 1.0), 10.0);
        assert_eq!(sample_at(&v, 1.0, 2.0), 20.0);
        assert_eq!(sample_at(&v, 1.0, 5.0), 0.0);
        assert_eq!(sample_at(&v, 1.0, -1.0), 0.0);
        assert_eq!(sample_at(&[], 1.0, 0.0), 0.0);
    }

    #[test]
    fn resample_linear_preserves_ramp() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let out = resample_linear(&v, 100.0, 200.0);
        assert_eq!(out.len(), 200);
        // At output index 50 (t = 0.25 s) the ramp value is 25.
        assert!((out[50] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn resample_downsamples_too() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let out = resample_linear(&v, 100.0, 50.0);
        assert_eq!(out.len(), 50);
        assert!((out[10] - 20.0).abs() < 1e-9);
    }
}
