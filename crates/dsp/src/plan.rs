//! Precomputed FFT plans and the thread-local plan cache.
//!
//! The free functions in [`crate::fft`] historically recomputed twiddle
//! factors and the bit-reversal permutation on every call and allocated a
//! fresh output buffer each time. Every Monte-Carlo trial in the workspace
//! runs dozens of transforms of a handful of fixed sizes (the range FFT,
//! the slow-time Doppler FFT, the matched-filter convolution length), so
//! the same tables were being rebuilt millions of times per sweep.
//!
//! An [`FftPlan`] precomputes, per power-of-two size:
//! * the per-stage twiddle factors (`n − 1` complex values, laid out
//!   stage-major so the butterfly loop reads them sequentially),
//! * the bit-reversal permutation,
//!
//! and a [`BluesteinPlan`] additionally caches the chirp-z kernel and the
//! forward transform of its convolution filter for arbitrary (non-power-
//! of-two) lengths — eliminating one of the three internal FFTs and the
//! kernel synthesis per call.
//!
//! [`with_plan`]/[`with_bluestein`] memoize plans in a thread-local cache
//! keyed by size, so callers never manage plan lifetimes; the free
//! functions in [`crate::fft`] are now thin wrappers over this module and
//! produce bitwise-identical results to explicit plan usage.

use crate::num::{Cpx, ZERO};
use milback_telemetry as telemetry;
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

/// A reusable radix-2 FFT plan for one power-of-two length.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Stage-major twiddles: for `len = 2, 4, …, n`, the factors
    /// `exp(-j·2π·k/len)` for `k ∈ [0, len/2)`, concatenated.
    twiddles: Vec<Cpx>,
    /// Bit-reversal permutation of `0..n`.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for length `n`.
    ///
    /// ```
    /// use milback_dsp::num::Cpx;
    /// use milback_dsp::plan::FftPlan;
    ///
    /// let plan = FftPlan::new(16);
    /// let x: Vec<Cpx> = (0..16).map(|i| Cpx::cis(i as f64 * 0.3)).collect();
    /// let back = plan.inverse(&plan.forward(&x));
    /// for (a, b) in x.iter().zip(&back) {
    ///     assert!((*a - *b).abs() < 1e-12);
    /// }
    /// ```
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            crate::fft::is_pow2(n),
            "FftPlan requires a power-of-two length, got {n}"
        );
        assert!(n <= u32::MAX as usize, "FFT length {n} too large for plan");
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            for k in 0..half {
                twiddles.push(Cpx::cis(-2.0 * PI * k as f64 / len as f64));
            }
            len <<= 1;
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Self {
            n,
            twiddles,
            bitrev,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this is the trivial length-0/1 plan.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place unnormalized forward DFT.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward_in_place(&self, data: &mut [Cpx]) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation from the precomputed table.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies with table twiddles (stage-major layout means the
        // inner loop walks a contiguous slice).
        let mut len = 2;
        let mut tw_off = 0;
        while len <= n {
            let half = len / 2;
            let tw = &self.twiddles[tw_off..tw_off + half];
            let mut i = 0;
            while i < n {
                for k in 0..half {
                    let u = data[i + k];
                    let v = data[i + k + half] * tw[k];
                    data[i + k] = u + v;
                    data[i + k + half] = u - v;
                }
                i += len;
            }
            tw_off += half;
            len <<= 1;
        }
    }

    /// In-place inverse DFT including the `1/N` normalization, via the
    /// conjugation identity `IDFT(x) = conj(DFT(conj(x)))/N`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse_in_place(&self, data: &mut [Cpx]) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        if self.n == 0 {
            return;
        }
        for c in data.iter_mut() {
            *c = c.conj();
        }
        self.forward_in_place(data);
        let inv_n = 1.0 / self.n as f64;
        for c in data.iter_mut() {
            *c = c.conj() * inv_n;
        }
    }

    /// Forward DFT into a caller-owned buffer: `out` is overwritten with
    /// the spectrum of `input`, reusing its capacity. After warmup (once
    /// `out` has grown to the plan length) this performs no heap
    /// allocation. Bitwise identical to [`FftPlan::forward`].
    pub fn forward_into(&self, input: &[Cpx], out: &mut Vec<Cpx>) {
        crate::buffer::copy_into(input, out);
        self.forward_in_place(out);
    }

    /// Inverse DFT (normalized) into a caller-owned buffer; the
    /// allocation-free counterpart of [`FftPlan::inverse`].
    pub fn inverse_into(&self, input: &[Cpx], out: &mut Vec<Cpx>) {
        crate::buffer::copy_into(input, out);
        self.inverse_in_place(out);
    }

    /// Out-of-place forward DFT (allocating wrapper over
    /// [`FftPlan::forward_into`]).
    pub fn forward(&self, input: &[Cpx]) -> Vec<Cpx> {
        let mut out = Vec::new();
        self.forward_into(input, &mut out);
        out
    }

    /// Out-of-place inverse DFT, normalized (allocating wrapper over
    /// [`FftPlan::inverse_into`]).
    pub fn inverse(&self, input: &[Cpx]) -> Vec<Cpx> {
        let mut out = Vec::new();
        self.inverse_into(input, &mut out);
        out
    }
}

/// A reusable Bluestein (chirp-z) plan for one arbitrary length.
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    n: usize,
    /// Padded convolution length (power of two ≥ 2n−1).
    m: usize,
    /// Forward-transform chirp `exp(-jπk²/n)` for `k ∈ [0, n)`.
    chirp: Vec<Cpx>,
    /// Precomputed forward FFT of the convolution filter built from the
    /// conjugate chirp (forward-transform orientation).
    filter_spec: Vec<Cpx>,
    /// The length-`m` radix-2 plan the convolution runs on.
    inner: Rc<FftPlan>,
    /// Reusable length-`m` convolution buffer. Plans live in a
    /// thread-local cache, so a `RefCell` suffices; after the first
    /// transform a call performs zero transient allocations.
    scratch: RefCell<Vec<Cpx>>,
}

impl BluesteinPlan {
    /// Builds a plan for length `n` (any `n ≥ 1`), reusing `inner` for the
    /// internal power-of-two convolution.
    pub fn new(n: usize, inner: Rc<FftPlan>) -> Self {
        assert!(n >= 1, "BluesteinPlan requires n >= 1");
        let m = crate::fft::next_pow2(2 * n - 1);
        assert_eq!(inner.len(), m, "inner plan length mismatch");
        // Chirp factors c[k] = exp(-jπ k²/n); k² is reduced mod 2n to keep
        // the phase argument bounded for large k.
        let chirp: Vec<Cpx> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % (2 * n as u128);
                Cpx::cis(-PI * k2 as f64 / n as f64)
            })
            .collect();
        let mut filter = vec![ZERO; m];
        filter[0] = chirp[0].conj();
        for k in 1..n {
            let c = chirp[k].conj();
            filter[k] = c;
            filter[m - k] = c;
        }
        inner.forward_in_place(&mut filter);
        Self {
            n,
            m,
            chirp,
            filter_spec: filter,
            inner,
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this is the trivial length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Unnormalized transform with sign `-1` (forward) or `+1` (inverse
    /// kernel; the caller applies `1/N`), written into `out`. The
    /// convolution runs in the plan's own scratch buffer, so a call on a
    /// warmed plan performs no heap allocation beyond growing `out` once.
    ///
    /// # Panics
    /// Panics if called re-entrantly on the same plan (the internal
    /// scratch is a `RefCell`); transforms never recurse, so this cannot
    /// happen from the public API.
    pub fn transform_into(&self, input: &[Cpx], inverse: bool, out: &mut Vec<Cpx>) {
        assert_eq!(input.len(), self.n, "buffer length != plan length");
        let n = self.n;
        let m = self.m;
        let mut scratch = self.scratch.borrow_mut();
        scratch.clear();
        scratch.resize(m, ZERO);
        // The inverse kernel is the conjugate chirp; conjugating the
        // cached forward chirp avoids a second table.
        let chirp = |k: usize| {
            if inverse {
                self.chirp[k].conj()
            } else {
                self.chirp[k]
            }
        };
        for k in 0..n {
            scratch[k] = input[k] * chirp(k);
        }
        self.inner.forward_in_place(&mut scratch);
        if inverse {
            // conv filter for the inverse kernel is the conjugate of the
            // forward filter's *time response*, whose spectrum is the
            // conjugate-with-reversal; recomputing from the identity
            // FFT(conj(x))[k] = conj(FFT(x)[-k]) keeps one cached table.
            for (k, s) in scratch.iter_mut().enumerate().take(m) {
                *s *= self.filter_spec[(m - k) % m].conj();
            }
        } else {
            for (s, f) in scratch.iter_mut().zip(&self.filter_spec) {
                *s *= *f;
            }
        }
        // Inverse FFT of the product via the conjugate trick + 1/m.
        for c in scratch.iter_mut() {
            *c = c.conj();
        }
        self.inner.forward_in_place(&mut scratch);
        let inv_m = 1.0 / m as f64;
        crate::buffer::track_growth(out, n);
        out.clear();
        out.extend((0..n).map(|k| scratch[k].conj() * inv_m * chirp(k)));
    }

    /// Allocating wrapper over [`BluesteinPlan::transform_into`].
    pub fn transform(&self, input: &[Cpx], inverse: bool) -> Vec<Cpx> {
        let mut out = Vec::new();
        self.transform_into(input, inverse, &mut out);
        out
    }
}

/// Thread-local memoized plans. Bluestein scratch lives inside each
/// [`BluesteinPlan`], so the cache holds plans only.
struct PlanCache {
    fft: HashMap<usize, Rc<FftPlan>>,
    bluestein: HashMap<usize, Rc<BluesteinPlan>>,
}

thread_local! {
    static PLAN_CACHE: RefCell<PlanCache> = RefCell::new(PlanCache {
        fft: HashMap::new(),
        bluestein: HashMap::new(),
    });
}

fn pow2_plan(cache: &mut PlanCache, n: usize) -> Rc<FftPlan> {
    match cache.fft.entry(n) {
        std::collections::hash_map::Entry::Occupied(e) => {
            telemetry::counter_add("dsp.plan_cache.hit.local", 1);
            e.get().clone()
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            telemetry::counter_add("dsp.plan_cache.miss.local", 1);
            telemetry::observe("dsp.plan_cache.built_size.local", n as u64);
            e.insert(Rc::new(FftPlan::new(n))).clone()
        }
    }
}

/// Runs `f` with the cached power-of-two plan for length `n`, creating it
/// on first use. Plans are per-thread, so this is safe (and contention-
/// free) under the parallel batch engine.
///
/// ```
/// use milback_dsp::num::Cpx;
/// use milback_dsp::plan::with_plan;
///
/// let x: Vec<Cpx> = (0..8).map(|i| Cpx::new(i as f64, 0.0)).collect();
/// // First call builds the length-8 plan; repeats reuse it.
/// let spectrum = with_plan(8, |plan| plan.forward(&x));
/// // Bitwise identical to the free function (itself a plan wrapper).
/// assert_eq!(spectrum, milback_dsp::fft::fft(&x));
/// ```
///
/// # Panics
/// Panics if `n` is not a power of two.
pub fn with_plan<R>(n: usize, f: impl FnOnce(&FftPlan) -> R) -> R {
    telemetry::observe("dsp.fft.size", n as u64);
    let plan = PLAN_CACHE.with(|c| pow2_plan(&mut c.borrow_mut(), n));
    f(&plan)
}

/// Runs `f` with the cached Bluestein plan for arbitrary length `n`.
pub fn with_bluestein<R>(n: usize, f: impl FnOnce(&BluesteinPlan) -> R) -> R {
    let plan = PLAN_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(p) = cache.bluestein.get(&n) {
            telemetry::counter_add("dsp.plan_cache.hit.local", 1);
            p.clone()
        } else {
            telemetry::counter_add("dsp.plan_cache.miss.local", 1);
            let inner = pow2_plan(&mut cache, crate::fft::next_pow2(2 * n - 1));
            let p = Rc::new(BluesteinPlan::new(n, inner));
            cache.bluestein.insert(n, p.clone());
            p
        }
    });
    f(&plan)
}

/// Bluestein transform through the thread-local cache, written into a
/// caller-owned buffer. `inverse` selects the kernel sign; normalization
/// is the caller's business (matching [`crate::fft::fft`] conventions).
///
/// The hot path is a single cache borrow with no `Rc` clone: the
/// transform runs *under* the borrow, which is sound because
/// [`BluesteinPlan::transform_into`] is self-contained (its inner
/// power-of-two plan and scratch buffer live inside the plan) and never
/// re-enters the cache.
pub(crate) fn bluestein_cached_into(input: &[Cpx], inverse: bool, out: &mut Vec<Cpx>) {
    let n = input.len();
    telemetry::observe("dsp.fft.size", n as u64);
    PLAN_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(p) = cache.bluestein.get(&n) {
            telemetry::counter_add("dsp.plan_cache.hit.local", 1);
            p.transform_into(input, inverse, out);
        } else {
            telemetry::counter_add("dsp.plan_cache.miss.local", 1);
            let inner = pow2_plan(&mut cache, crate::fft::next_pow2(2 * n - 1));
            let p = Rc::new(BluesteinPlan::new(n, inner));
            p.transform_into(input, inverse, out);
            cache.bluestein.insert(n, p);
        }
    })
}

/// Allocating wrapper over [`bluestein_cached_into`].
pub(crate) fn bluestein_cached(input: &[Cpx], inverse: bool) -> Vec<Cpx> {
    let mut out = Vec::new();
    bluestein_cached_into(input, inverse, &mut out);
    out
}

/// Number of distinct plan sizes currently cached on this thread
/// (`(radix-2, bluestein)`), for tests and diagnostics.
pub fn cached_plan_sizes() -> (usize, usize) {
    PLAN_CACHE.with(|c| {
        let cache = c.borrow();
        (cache.fft.len(), cache.bluestein.len())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{fft, ifft};

    fn ramp(n: usize) -> Vec<Cpx> {
        (0..n)
            .map(|i| Cpx::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn plan_matches_free_fft_bitwise_pow2() {
        for n in [1usize, 2, 8, 64, 512] {
            let x = ramp(n);
            let planned = FftPlan::new(n).forward(&x);
            assert_eq!(planned, fft(&x), "n={n}");
        }
    }

    #[test]
    fn plan_inverse_round_trip() {
        for n in [2usize, 16, 128] {
            let plan = FftPlan::new(n);
            let x = ramp(n);
            let y = plan.inverse(&plan.forward(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((*a - *b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn bluestein_plan_matches_free_fft_bitwise() {
        for n in [3usize, 5, 12, 100, 257] {
            let x = ramp(n);
            let via_free = fft(&x);
            let via_plan = bluestein_cached(&x, false);
            assert_eq!(via_free, via_plan, "n={n}");
        }
    }

    #[test]
    fn bluestein_inverse_matches_ifft() {
        for n in [3usize, 7, 100] {
            let x = ramp(n);
            let expect = ifft(&x);
            let mut got = bluestein_cached(&x, true);
            let inv_n = 1.0 / n as f64;
            for c in got.iter_mut() {
                *c *= inv_n;
            }
            for (a, b) in expect.iter().zip(&got) {
                assert!((*a - *b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn forward_into_matches_forward_bitwise() {
        for n in [1usize, 8, 256] {
            let x = ramp(n);
            let plan = FftPlan::new(n);
            let alloc = plan.forward(&x);
            let mut reused = Vec::new();
            // Repeated calls into the same buffer must keep producing the
            // allocating result bit for bit.
            for _ in 0..3 {
                plan.forward_into(&x, &mut reused);
                assert_eq!(alloc, reused, "n={n}");
            }
            let inv_alloc = plan.inverse(&alloc);
            let mut inv_reused = Vec::new();
            plan.inverse_into(&alloc, &mut inv_reused);
            assert_eq!(inv_alloc, inv_reused, "n={n}");
        }
    }

    #[test]
    fn bluestein_into_matches_allocating_bitwise() {
        for n in [3usize, 12, 257] {
            let x = ramp(n);
            let expect = bluestein_cached(&x, false);
            let mut out = Vec::new();
            // The internal scratch is reused across calls; results must
            // stay bitwise stable.
            for _ in 0..3 {
                bluestein_cached_into(&x, false, &mut out);
                assert_eq!(expect, out, "n={n}");
            }
            let inner = Rc::new(FftPlan::new(crate::fft::next_pow2(2 * n - 1)));
            let standalone = BluesteinPlan::new(n, inner);
            assert_eq!(standalone.transform(&x, false), expect, "n={n}");
        }
    }

    #[test]
    fn cache_memoizes_by_size() {
        // Run on a dedicated thread for a clean cache.
        std::thread::spawn(|| {
            let x = ramp(64);
            let _ = fft(&x);
            let _ = fft(&x);
            let y = ramp(100);
            let _ = fft(&y);
            let (p2, blu) = cached_plan_sizes();
            // 64 and the bluestein inner 256 for n=100.
            assert_eq!(blu, 1);
            assert!(p2 >= 2, "pow2 plans {p2}");
        })
        .join()
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_plan_rejected() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_length_rejected() {
        let plan = FftPlan::new(8);
        let mut buf = vec![ZERO; 4];
        plan.forward_in_place(&mut buf);
    }
}
