//! Precomputed FFT plans and the thread-local plan cache.
//!
//! The free functions in [`crate::fft`] historically recomputed twiddle
//! factors and the bit-reversal permutation on every call and allocated a
//! fresh output buffer each time. Every Monte-Carlo trial in the workspace
//! runs dozens of transforms of a handful of fixed sizes (the range FFT,
//! the slow-time Doppler FFT, the matched-filter convolution length), so
//! the same tables were being rebuilt millions of times per sweep.
//!
//! An [`FftPlan`] precomputes, per power-of-two size:
//! * the per-stage twiddle factors (`n − 1` complex values, laid out
//!   stage-major so the butterfly loop reads them sequentially),
//! * the bit-reversal permutation,
//!
//! and a [`BluesteinPlan`] additionally caches the chirp-z kernel and the
//! forward transform of its convolution filter for arbitrary (non-power-
//! of-two) lengths — eliminating one of the three internal FFTs and the
//! kernel synthesis per call.
//!
//! Execution fuses radix-2 stage pairs into radix-4 passes over four
//! equal-length slice lanes (bounds-check-free, autovectorizable), tiles
//! the low stages to L1, and — in the batched
//! [`FftPlan::forward_many_into`] path — runs the large-stride tail
//! stages once for a whole batch of buffers. Every fused pass performs
//! exactly the floating-point expressions of the two radix-2 stages it
//! replaces, so all of these paths are **bitwise identical** to the
//! plain radix-2 reference (pinned by golden-vector tests). True
//! split-radix was evaluated and rejected: its rearranged twiddle
//! algebra changes rounding, which would break the bitwise contract the
//! rest of the workspace is pinned against. See `DESIGN.md` §17.
//!
//! The siblings of this module: [`crate::realfft`] (N-point real
//! transform via an N/2 complex plan + untangling) and [`crate::plan32`]
//! (opt-in f32 sweep tier, accuracy-bounded rather than bitwise).
//!
//! [`with_plan`]/[`with_bluestein`] memoize plans in a thread-local cache
//! keyed by size, so callers never manage plan lifetimes; the free
//! functions in [`crate::fft`] are now thin wrappers over this module and
//! produce bitwise-identical results to explicit plan usage.

use crate::num::{Cpx, ZERO};
use milback_telemetry as telemetry;
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

/// A reusable radix-2 FFT plan for one power-of-two length.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Stage-major twiddles: for `len = 2, 4, …, n`, the factors
    /// `exp(-j·2π·k/len)` for `k ∈ [0, len/2)`, concatenated.
    twiddles: Vec<Cpx>,
    /// Bit-reversal permutation of `0..n`.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for length `n`.
    ///
    /// ```
    /// use milback_dsp::num::Cpx;
    /// use milback_dsp::plan::FftPlan;
    ///
    /// let plan = FftPlan::new(16);
    /// let x: Vec<Cpx> = (0..16).map(|i| Cpx::cis(i as f64 * 0.3)).collect();
    /// let back = plan.inverse(&plan.forward(&x));
    /// for (a, b) in x.iter().zip(&back) {
    ///     assert!((*a - *b).abs() < 1e-12);
    /// }
    /// ```
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            crate::fft::is_pow2(n),
            "FftPlan requires a power-of-two length, got {n}"
        );
        assert!(n <= u32::MAX as usize, "FFT length {n} too large for plan");
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            for k in 0..half {
                twiddles.push(Cpx::cis(-2.0 * PI * k as f64 / len as f64));
            }
            len <<= 1;
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Self {
            n,
            twiddles,
            bitrev,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this is the trivial length-0/1 plan.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Butterfly tile size in complex elements (16 KiB of `Cpx`): stages
    /// whose span fits the tile are run to completion per tile so the
    /// working set stays L1-resident, before the large-stride stages walk
    /// the whole buffer. Pure loop interchange over independent
    /// butterflies — bitwise identical to the untiled order.
    const TILE: usize = 1024;

    /// In-place unnormalized forward DFT.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward_in_place(&self, data: &mut [Cpx]) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        if self.n <= 1 {
            return;
        }
        // Bit-reversal permutation from the precomputed table.
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        self.butterflies(data);
    }

    /// All butterfly stages on bit-reversed data: L1-tiled low stages,
    /// then the large-stride tail over the full buffer.
    fn butterflies(&self, data: &mut [Cpx]) {
        let n = self.n;
        if n > Self::TILE {
            for chunk in data.chunks_exact_mut(Self::TILE) {
                self.stages(chunk, 2, Self::TILE);
            }
            self.stages(data, 2 * Self::TILE, n);
        } else {
            self.stages(data, 2, n);
        }
    }

    /// Runs butterfly stages `from_len, 2·from_len, …, to_len` over `data`
    /// (whose length must be a multiple of `to_len`). Stages are fused in
    /// pairs into radix-4 passes; an odd stage count leads with a single
    /// radix-2 pass so the fused kernel always sees aligned pairs.
    fn stages(&self, data: &mut [Cpx], from_len: usize, to_len: usize) {
        let n_stages = (to_len.trailing_zeros() + 1 - from_len.trailing_zeros()) as usize;
        let mut len = from_len;
        if n_stages % 2 == 1 {
            self.radix2_stage(data, len);
            len <<= 1;
        }
        while len <= to_len {
            self.radix4_pair(data, len);
            len <<= 2;
        }
    }

    /// One radix-2 stage of span `len`. The block is split into two
    /// equal-length halves so the inner loop is a pure three-slice zip —
    /// no bounds checks, and a shape LLVM autovectorizes.
    fn radix2_stage(&self, data: &mut [Cpx], len: usize) {
        let half = len / 2;
        // Stage-major layout: stage `len` starts at offset `len/2 − 1`.
        let tw = &self.twiddles[half - 1..len - 1];
        // AVX path: two complex pairs per vector, bitwise identical to
        // the scalar loop below (see crate::simd module docs).
        #[cfg(target_arch = "x86_64")]
        if half >= 2 && crate::simd::avx_available() {
            // SAFETY: AVX checked above; `half` is even (≥2 and a power
            // of two), data length is a multiple of `len`, and `tw` has
            // exactly `half` twiddles.
            unsafe { crate::simd::radix2_stage_pd(data, tw, len) };
            return;
        }
        for block in data.chunks_exact_mut(len) {
            let (lo, hi) = block.split_at_mut(half);
            for ((u, v), t) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
                let a = *u;
                let b = *v * *t;
                *u = a + b;
                *v = a - b;
            }
        }
    }

    /// Two consecutive radix-2 stages (`len` and `2·len`) fused into one
    /// radix-4 pass. Each `2·len` block is split into four `len/2` lanes;
    /// every iteration performs exactly the floating-point expressions the
    /// two separate stages would (same operands, same order), so results
    /// are bitwise identical to the radix-2 reference — the win is one
    /// memory pass instead of two plus a four-lane body that keeps more
    /// independent FP chains in flight. Equal-length lane slices keep the
    /// inner loop free of bounds checks (verified: no panicking branches
    /// in the release asm for the loop body).
    fn radix4_pair(&self, data: &mut [Cpx], len: usize) {
        let half = len / 2;
        let twa = &self.twiddles[half - 1..len - 1];
        let twb = &self.twiddles[len - 1..2 * len - 1];
        let (tb_lo, tb_hi) = twb.split_at(half);
        // AVX path — bitwise identical (crate::simd module docs).
        #[cfg(target_arch = "x86_64")]
        if half >= 2 && crate::simd::avx_available() {
            // SAFETY: AVX checked above; `half` is even, data length is
            // a multiple of `2·len`, and each twiddle slice has `half`
            // elements.
            unsafe { crate::simd::radix4_pair_pd(data, twa, tb_lo, tb_hi, len) };
            return;
        }
        for block in data.chunks_exact_mut(2 * len) {
            let (x01, x23) = block.split_at_mut(len);
            let (x0, x1) = x01.split_at_mut(half);
            let (x2, x3) = x23.split_at_mut(half);
            for k in 0..half {
                let ta = twa[k];
                let u0 = x0[k];
                let v0 = x1[k] * ta;
                let u1 = x2[k];
                let v1 = x3[k] * ta;
                // First stage: (a, c) and (e, g) are the radix-2 outputs
                // of the two len-sized sub-blocks.
                let a = u0 + v0;
                let c = u0 - v0;
                let e = u1 + v1;
                let g = u1 - v1;
                // Second stage across the sub-blocks.
                let eb = e * tb_lo[k];
                let gb = g * tb_hi[k];
                x0[k] = a + eb;
                x2[k] = a - eb;
                x1[k] = c + gb;
                x3[k] = c - gb;
            }
        }
    }

    /// In-place inverse DFT including the `1/N` normalization, via the
    /// conjugation identity `IDFT(x) = conj(DFT(conj(x)))/N`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse_in_place(&self, data: &mut [Cpx]) {
        assert_eq!(data.len(), self.n, "buffer length != plan length");
        if self.n == 0 {
            return;
        }
        for c in data.iter_mut() {
            *c = c.conj();
        }
        self.forward_in_place(data);
        let inv_n = 1.0 / self.n as f64;
        for c in data.iter_mut() {
            *c = c.conj() * inv_n;
        }
    }

    /// Forward DFT into a caller-owned buffer: `out` is overwritten with
    /// the spectrum of `input`, reusing its capacity. After warmup (once
    /// `out` has grown to the plan length) this performs no heap
    /// allocation. Bitwise identical to [`FftPlan::forward`].
    ///
    /// Unlike the in-place path, the input is gathered *directly in
    /// bit-reversed order* (the permutation is an involution, so the
    /// gather produces exactly what copy-then-swap did) — one pass over
    /// the data instead of a copy pass plus a swap pass. This is what
    /// fixed the BENCH_3 `forward_into` regression at 16384 points.
    pub fn forward_into(&self, input: &[Cpx], out: &mut Vec<Cpx>) {
        assert_eq!(input.len(), self.n, "buffer length != plan length");
        crate::buffer::track_growth(out, self.n);
        out.clear();
        if self.n <= 1 {
            out.extend_from_slice(input);
            return;
        }
        out.extend(self.bitrev.iter().map(|&j| input[j as usize]));
        self.butterflies(out);
    }

    /// Batched in-place forward DFT: every buffer is permuted and tiled
    /// through the low stages, then the large-stride tail stages run in
    /// **one traversal of the plan's stage list** with each stage's
    /// twiddle block applied to all buffers while it is cache-hot. Per
    /// buffer the floating-point work is identical to
    /// [`FftPlan::forward_in_place`] (buffers are independent), so the
    /// batch is bitwise identical to sequential calls.
    ///
    /// # Panics
    /// Panics if any buffer length differs from the plan length.
    pub fn forward_many_in_place(&self, bufs: &mut [Vec<Cpx>]) {
        for b in bufs.iter_mut() {
            assert_eq!(b.len(), self.n, "buffer length != plan length");
            if self.n <= 1 {
                continue;
            }
            for i in 0..self.n {
                let j = self.bitrev[i] as usize;
                if i < j {
                    b.swap(i, j);
                }
            }
        }
        self.many_butterflies(bufs);
    }

    /// Batched forward DFT into caller-owned buffers: each `inputs[i]` is
    /// gathered bit-reversed into `outs[i]` (capacity reused, zero
    /// steady-state allocation) and the butterfly stages run as in
    /// [`FftPlan::forward_many_in_place`]. Bitwise identical to `n`
    /// sequential [`FftPlan::forward_into`] calls.
    ///
    /// # Panics
    /// Panics on batch-size or buffer-length mismatch.
    pub fn forward_many_into(&self, inputs: &[&[Cpx]], outs: &mut [Vec<Cpx>]) {
        assert_eq!(inputs.len(), outs.len(), "batch size mismatch");
        for (input, out) in inputs.iter().zip(outs.iter_mut()) {
            assert_eq!(input.len(), self.n, "buffer length != plan length");
            crate::buffer::track_growth(out, self.n);
            out.clear();
            if self.n <= 1 {
                out.extend_from_slice(input);
            } else {
                out.extend(self.bitrev.iter().map(|&j| input[j as usize]));
            }
        }
        self.many_butterflies(outs);
    }

    /// Butterfly stages for a batch of bit-reversed buffers: low stages
    /// L1-tiled per buffer, tail stages stage-outer / buffer-inner.
    fn many_butterflies(&self, bufs: &mut [Vec<Cpx>]) {
        let n = self.n;
        if n <= 1 {
            return;
        }
        if n <= Self::TILE {
            for b in bufs.iter_mut() {
                self.stages(b, 2, n);
            }
            return;
        }
        for b in bufs.iter_mut() {
            for chunk in b.chunks_exact_mut(Self::TILE) {
                self.stages(chunk, 2, Self::TILE);
            }
        }
        // Single traversal of the tail stages, shared across the batch.
        let from_len = 2 * Self::TILE;
        let n_stages = (n.trailing_zeros() + 1 - from_len.trailing_zeros()) as usize;
        let mut len = from_len;
        if n_stages % 2 == 1 {
            for b in bufs.iter_mut() {
                self.radix2_stage(b, len);
            }
            len <<= 1;
        }
        while len <= n {
            for b in bufs.iter_mut() {
                self.radix4_pair(b, len);
            }
            len <<= 2;
        }
    }

    /// Inverse DFT (normalized) into a caller-owned buffer; the
    /// allocation-free counterpart of [`FftPlan::inverse`].
    pub fn inverse_into(&self, input: &[Cpx], out: &mut Vec<Cpx>) {
        crate::buffer::copy_into(input, out);
        self.inverse_in_place(out);
    }

    /// Out-of-place forward DFT (allocating wrapper over
    /// [`FftPlan::forward_into`]).
    pub fn forward(&self, input: &[Cpx]) -> Vec<Cpx> {
        let mut out = Vec::new();
        self.forward_into(input, &mut out);
        out
    }

    /// Out-of-place inverse DFT, normalized (allocating wrapper over
    /// [`FftPlan::inverse_into`]).
    pub fn inverse(&self, input: &[Cpx]) -> Vec<Cpx> {
        let mut out = Vec::new();
        self.inverse_into(input, &mut out);
        out
    }
}

/// A reusable Bluestein (chirp-z) plan for one arbitrary length.
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    n: usize,
    /// Padded convolution length (power of two ≥ 2n−1).
    m: usize,
    /// Forward-transform chirp `exp(-jπk²/n)` for `k ∈ [0, n)`.
    chirp: Vec<Cpx>,
    /// Precomputed forward FFT of the convolution filter built from the
    /// conjugate chirp (forward-transform orientation).
    filter_spec: Vec<Cpx>,
    /// The length-`m` radix-2 plan the convolution runs on.
    inner: Rc<FftPlan>,
    /// Reusable length-`m` convolution buffer. Plans live in a
    /// thread-local cache, so a `RefCell` suffices; after the first
    /// transform a call performs zero transient allocations.
    scratch: RefCell<Vec<Cpx>>,
}

impl BluesteinPlan {
    /// Builds a plan for length `n` (any `n ≥ 1`), reusing `inner` for the
    /// internal power-of-two convolution.
    pub fn new(n: usize, inner: Rc<FftPlan>) -> Self {
        assert!(n >= 1, "BluesteinPlan requires n >= 1");
        let m = crate::fft::next_pow2(2 * n - 1);
        assert_eq!(inner.len(), m, "inner plan length mismatch");
        // Chirp factors c[k] = exp(-jπ k²/n); k² is reduced mod 2n to keep
        // the phase argument bounded for large k.
        let chirp: Vec<Cpx> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % (2 * n as u128);
                Cpx::cis(-PI * k2 as f64 / n as f64)
            })
            .collect();
        let mut filter = vec![ZERO; m];
        filter[0] = chirp[0].conj();
        for k in 1..n {
            let c = chirp[k].conj();
            filter[k] = c;
            filter[m - k] = c;
        }
        inner.forward_in_place(&mut filter);
        Self {
            n,
            m,
            chirp,
            filter_spec: filter,
            inner,
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this is the trivial length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Unnormalized transform with sign `-1` (forward) or `+1` (inverse
    /// kernel; the caller applies `1/N`), written into `out`. The
    /// convolution runs in the plan's own scratch buffer, so a call on a
    /// warmed plan performs no heap allocation beyond growing `out` once.
    ///
    /// # Panics
    /// Panics if called re-entrantly on the same plan (the internal
    /// scratch is a `RefCell`); transforms never recurse, so this cannot
    /// happen from the public API.
    pub fn transform_into(&self, input: &[Cpx], inverse: bool, out: &mut Vec<Cpx>) {
        assert_eq!(input.len(), self.n, "buffer length != plan length");
        let n = self.n;
        let m = self.m;
        let mut scratch = self.scratch.borrow_mut();
        scratch.clear();
        scratch.resize(m, ZERO);
        // The inverse kernel is the conjugate chirp; conjugating the
        // cached forward chirp avoids a second table.
        let chirp = |k: usize| {
            if inverse {
                self.chirp[k].conj()
            } else {
                self.chirp[k]
            }
        };
        for k in 0..n {
            scratch[k] = input[k] * chirp(k);
        }
        self.inner.forward_in_place(&mut scratch);
        if inverse {
            // conv filter for the inverse kernel is the conjugate of the
            // forward filter's *time response*, whose spectrum is the
            // conjugate-with-reversal; recomputing from the identity
            // FFT(conj(x))[k] = conj(FFT(x)[-k]) keeps one cached table.
            for (k, s) in scratch.iter_mut().enumerate().take(m) {
                *s *= self.filter_spec[(m - k) % m].conj();
            }
        } else {
            for (s, f) in scratch.iter_mut().zip(&self.filter_spec) {
                *s *= *f;
            }
        }
        // Inverse FFT of the product via the conjugate trick + 1/m.
        for c in scratch.iter_mut() {
            *c = c.conj();
        }
        self.inner.forward_in_place(&mut scratch);
        let inv_m = 1.0 / m as f64;
        crate::buffer::track_growth(out, n);
        out.clear();
        out.extend((0..n).map(|k| scratch[k].conj() * inv_m * chirp(k)));
    }

    /// Allocating wrapper over [`BluesteinPlan::transform_into`].
    pub fn transform(&self, input: &[Cpx], inverse: bool) -> Vec<Cpx> {
        let mut out = Vec::new();
        self.transform_into(input, inverse, &mut out);
        out
    }
}

/// Thread-local memoized plans. Bluestein scratch lives inside each
/// [`BluesteinPlan`], so the cache holds plans only.
struct PlanCache {
    fft: HashMap<usize, Rc<FftPlan>>,
    bluestein: HashMap<usize, Rc<BluesteinPlan>>,
}

thread_local! {
    static PLAN_CACHE: RefCell<PlanCache> = RefCell::new(PlanCache {
        fft: HashMap::new(),
        bluestein: HashMap::new(),
    });
}

fn pow2_plan(cache: &mut PlanCache, n: usize) -> Rc<FftPlan> {
    match cache.fft.entry(n) {
        std::collections::hash_map::Entry::Occupied(e) => {
            telemetry::counter_add("dsp.plan_cache.hit.local", 1);
            e.get().clone()
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            telemetry::counter_add("dsp.plan_cache.miss.local", 1);
            telemetry::observe("dsp.plan_cache.built_size.local", n as u64);
            e.insert(Rc::new(FftPlan::new(n))).clone()
        }
    }
}

/// Runs `f` with the cached power-of-two plan for length `n`, creating it
/// on first use. Plans are per-thread, so this is safe (and contention-
/// free) under the parallel batch engine.
///
/// ```
/// use milback_dsp::num::Cpx;
/// use milback_dsp::plan::with_plan;
///
/// let x: Vec<Cpx> = (0..8).map(|i| Cpx::new(i as f64, 0.0)).collect();
/// // First call builds the length-8 plan; repeats reuse it.
/// let spectrum = with_plan(8, |plan| plan.forward(&x));
/// // Bitwise identical to the free function (itself a plan wrapper).
/// assert_eq!(spectrum, milback_dsp::fft::fft(&x));
/// ```
///
/// # Panics
/// Panics if `n` is not a power of two.
pub fn with_plan<R>(n: usize, f: impl FnOnce(&FftPlan) -> R) -> R {
    telemetry::observe("dsp.fft.size", n as u64);
    let plan = PLAN_CACHE.with(|c| pow2_plan(&mut c.borrow_mut(), n));
    f(&plan)
}

/// Runs `f` with the cached Bluestein plan for arbitrary length `n`.
pub fn with_bluestein<R>(n: usize, f: impl FnOnce(&BluesteinPlan) -> R) -> R {
    let plan = PLAN_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(p) = cache.bluestein.get(&n) {
            telemetry::counter_add("dsp.plan_cache.hit.local", 1);
            p.clone()
        } else {
            telemetry::counter_add("dsp.plan_cache.miss.local", 1);
            let inner = pow2_plan(&mut cache, crate::fft::next_pow2(2 * n - 1));
            let p = Rc::new(BluesteinPlan::new(n, inner));
            cache.bluestein.insert(n, p.clone());
            p
        }
    });
    f(&plan)
}

/// Bluestein transform through the thread-local cache, written into a
/// caller-owned buffer. `inverse` selects the kernel sign; normalization
/// is the caller's business (matching [`crate::fft::fft`] conventions).
///
/// The hot path is a single cache borrow with no `Rc` clone: the
/// transform runs *under* the borrow, which is sound because
/// [`BluesteinPlan::transform_into`] is self-contained (its inner
/// power-of-two plan and scratch buffer live inside the plan) and never
/// re-enters the cache.
pub(crate) fn bluestein_cached_into(input: &[Cpx], inverse: bool, out: &mut Vec<Cpx>) {
    let n = input.len();
    telemetry::observe("dsp.fft.size", n as u64);
    PLAN_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(p) = cache.bluestein.get(&n) {
            telemetry::counter_add("dsp.plan_cache.hit.local", 1);
            p.transform_into(input, inverse, out);
        } else {
            telemetry::counter_add("dsp.plan_cache.miss.local", 1);
            let inner = pow2_plan(&mut cache, crate::fft::next_pow2(2 * n - 1));
            let p = Rc::new(BluesteinPlan::new(n, inner));
            p.transform_into(input, inverse, out);
            cache.bluestein.insert(n, p);
        }
    })
}

/// Allocating wrapper over [`bluestein_cached_into`].
pub(crate) fn bluestein_cached(input: &[Cpx], inverse: bool) -> Vec<Cpx> {
    let mut out = Vec::new();
    bluestein_cached_into(input, inverse, &mut out);
    out
}

/// Number of distinct plan sizes currently cached on this thread
/// (`(radix-2, bluestein)`), for tests and diagnostics.
pub fn cached_plan_sizes() -> (usize, usize) {
    PLAN_CACHE.with(|c| {
        let cache = c.borrow();
        (cache.fft.len(), cache.bluestein.len())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{fft, ifft};

    fn ramp(n: usize) -> Vec<Cpx> {
        (0..n)
            .map(|i| Cpx::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn plan_matches_free_fft_bitwise_pow2() {
        for n in [1usize, 2, 8, 64, 512] {
            let x = ramp(n);
            let planned = FftPlan::new(n).forward(&x);
            assert_eq!(planned, fft(&x), "n={n}");
        }
    }

    #[test]
    fn plan_inverse_round_trip() {
        for n in [2usize, 16, 128] {
            let plan = FftPlan::new(n);
            let x = ramp(n);
            let y = plan.inverse(&plan.forward(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((*a - *b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn bluestein_plan_matches_free_fft_bitwise() {
        for n in [3usize, 5, 12, 100, 257] {
            let x = ramp(n);
            let via_free = fft(&x);
            let via_plan = bluestein_cached(&x, false);
            assert_eq!(via_free, via_plan, "n={n}");
        }
    }

    #[test]
    fn bluestein_inverse_matches_ifft() {
        for n in [3usize, 7, 100] {
            let x = ramp(n);
            let expect = ifft(&x);
            let mut got = bluestein_cached(&x, true);
            let inv_n = 1.0 / n as f64;
            for c in got.iter_mut() {
                *c *= inv_n;
            }
            for (a, b) in expect.iter().zip(&got) {
                assert!((*a - *b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn forward_into_matches_forward_bitwise() {
        for n in [1usize, 8, 256] {
            let x = ramp(n);
            let plan = FftPlan::new(n);
            let alloc = plan.forward(&x);
            let mut reused = Vec::new();
            // Repeated calls into the same buffer must keep producing the
            // allocating result bit for bit.
            for _ in 0..3 {
                plan.forward_into(&x, &mut reused);
                assert_eq!(alloc, reused, "n={n}");
            }
            let inv_alloc = plan.inverse(&alloc);
            let mut inv_reused = Vec::new();
            plan.inverse_into(&alloc, &mut inv_reused);
            assert_eq!(inv_alloc, inv_reused, "n={n}");
        }
    }

    #[test]
    fn bluestein_into_matches_allocating_bitwise() {
        for n in [3usize, 12, 257] {
            let x = ramp(n);
            let expect = bluestein_cached(&x, false);
            let mut out = Vec::new();
            // The internal scratch is reused across calls; results must
            // stay bitwise stable.
            for _ in 0..3 {
                bluestein_cached_into(&x, false, &mut out);
                assert_eq!(expect, out, "n={n}");
            }
            let inner = Rc::new(FftPlan::new(crate::fft::next_pow2(2 * n - 1)));
            let standalone = BluesteinPlan::new(n, inner);
            assert_eq!(standalone.transform(&x, false), expect, "n={n}");
        }
    }

    #[test]
    fn cache_memoizes_by_size() {
        // Run on a dedicated thread for a clean cache.
        std::thread::spawn(|| {
            let x = ramp(64);
            let _ = fft(&x);
            let _ = fft(&x);
            let y = ramp(100);
            let _ = fft(&y);
            let (p2, blu) = cached_plan_sizes();
            // 64 and the bluestein inner 256 for n=100.
            assert_eq!(blu, 1);
            assert!(p2 >= 2, "pow2 plans {p2}");
        })
        .join()
        .unwrap();
    }

    /// The pre-radix-4 reference: plain radix-2 DIT with the same
    /// twiddle table, exactly as `forward_in_place` was written before
    /// the fused kernels landed. The golden contract is that the fused
    /// radix-4 / tiled path reproduces this bit for bit.
    fn radix2_reference(plan: &FftPlan, data: &mut [Cpx]) {
        let n = data.len();
        if n <= 1 {
            return;
        }
        for i in 0..n {
            let j = plan.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut len = 2;
        let mut tw_off = 0;
        while len <= n {
            let half = len / 2;
            let tw = &plan.twiddles[tw_off..tw_off + half];
            let mut i = 0;
            while i < n {
                for k in 0..half {
                    let u = data[i + k];
                    let v = data[i + k + half] * tw[k];
                    data[i + k] = u + v;
                    data[i + k + half] = u - v;
                }
                i += len;
            }
            tw_off += half;
            len <<= 1;
        }
    }

    #[test]
    fn radix4_matches_radix2_reference_bitwise() {
        // Cover odd/even stage counts on both sides of the L1 tile
        // (TILE = 1024): pure-tiled, tail radix-2, tail radix-4.
        for n in [2usize, 4, 8, 64, 128, 1024, 2048, 4096, 16384] {
            let plan = FftPlan::new(n);
            let x = ramp(n);
            let mut golden = x.clone();
            radix2_reference(&plan, &mut golden);
            let mut fast = x.clone();
            plan.forward_in_place(&mut fast);
            assert_eq!(golden, fast, "n={n}");
        }
    }

    #[test]
    fn forward_many_matches_sequential_bitwise() {
        for n in [8usize, 1024, 4096] {
            let plan = FftPlan::new(n);
            let inputs: Vec<Vec<Cpx>> = (0..5)
                .map(|c| {
                    (0..n)
                        .map(|i| Cpx::cis((c * n + i) as f64 * 0.013) * (1.0 + i as f64 * 1e-3))
                        .collect()
                })
                .collect();
            let sequential: Vec<Vec<Cpx>> = inputs.iter().map(|x| plan.forward(x)).collect();

            // In-place batch.
            let mut bufs = inputs.clone();
            plan.forward_many_in_place(&mut bufs);
            assert_eq!(sequential, bufs, "in-place n={n}");

            // Into-buffer batch, twice through reused outs.
            let refs: Vec<&[Cpx]> = inputs.iter().map(|v| v.as_slice()).collect();
            let mut outs = vec![Vec::new(); 5];
            for _ in 0..2 {
                plan.forward_many_into(&refs, &mut outs);
                assert_eq!(sequential, outs, "into n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_plan_rejected() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_length_rejected() {
        let plan = FftPlan::new(8);
        let mut buf = vec![ZERO; 4];
        plan.forward_in_place(&mut buf);
    }
}
