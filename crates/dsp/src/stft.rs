//! Short-time Fourier transform (spectrogram).
//!
//! Used by the concept-figure demos (the paper's Fig. 2 FMCW illustration)
//! and generally handy for inspecting chirps and modulated waveforms.

use crate::fft::{fft, is_pow2};
use crate::num::Cpx;
use crate::plan::with_plan;
use crate::window::{apply_window, Window};

/// STFT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StftConfig {
    /// Samples per analysis frame.
    pub frame_len: usize,
    /// Samples between frame starts (≤ frame_len).
    pub hop: usize,
    /// Analysis window.
    pub window: Window,
}

impl StftConfig {
    /// A config with 50% overlap and a Hann window.
    pub fn new(frame_len: usize) -> Self {
        assert!(frame_len >= 4, "frame too short");
        Self {
            frame_len,
            hop: frame_len / 2,
            window: Window::Hann,
        }
    }
}

/// A computed spectrogram.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    /// Power per frame per frequency bin: `frames × frame_len`.
    pub power: Vec<Vec<f64>>,
    /// Start time (seconds) of each frame.
    pub frame_times: Vec<f64>,
    /// Frequency (Hz) of each bin, in natural FFT order.
    pub bin_freqs: Vec<f64>,
}

impl Spectrogram {
    /// The dominant (highest-power) frequency of each frame.
    pub fn peak_track(&self) -> Vec<f64> {
        self.power
            .iter()
            .map(|frame| {
                let k = crate::detect::argmax(frame).unwrap_or(0);
                self.bin_freqs[k]
            })
            .collect()
    }
}

/// Computes the spectrogram of a complex-baseband signal at rate `fs`.
pub fn stft(samples: &[Cpx], fs: f64, cfg: StftConfig) -> Spectrogram {
    assert!(cfg.hop >= 1 && cfg.hop <= cfg.frame_len, "bad hop");
    let bin_freqs = crate::fft::fft_freqs(cfg.frame_len, fs);
    let mut power = Vec::new();
    let mut frame_times = Vec::new();
    let mut start = 0usize;
    if is_pow2(cfg.frame_len) {
        // One cached plan and one reused frame buffer serve every hop.
        with_plan(cfg.frame_len, |plan| {
            let mut frame = Vec::with_capacity(cfg.frame_len);
            while start + cfg.frame_len <= samples.len() {
                frame.clear();
                frame.extend_from_slice(&samples[start..start + cfg.frame_len]);
                apply_window(&mut frame, cfg.window);
                plan.forward_in_place(&mut frame);
                power.push(frame.iter().map(|c| c.norm_sq()).collect());
                frame_times.push(start as f64 / fs);
                start += cfg.hop;
            }
        });
    } else {
        while start + cfg.frame_len <= samples.len() {
            let mut frame = samples[start..start + cfg.frame_len].to_vec();
            apply_window(&mut frame, cfg.window);
            let spec = fft(&frame);
            power.push(spec.iter().map(|c| c.norm_sq()).collect());
            frame_times.push(start as f64 / fs);
            start += cfg.hop;
        }
    }
    Spectrogram {
        power,
        frame_times,
        bin_freqs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chirp::ChirpConfig;
    use crate::signal::Signal;

    #[test]
    fn tone_tracks_flat() {
        let fs = 1e6;
        let s = Signal::tone(fs, 0.0, 120e3, 1.0, 4096);
        let sg = stft(&s.samples, fs, StftConfig::new(256));
        for f in sg.peak_track() {
            assert!((f - 120e3).abs() <= fs / 256.0, "{f}");
        }
    }

    #[test]
    fn chirp_track_is_monotone_ramp() {
        let cfg = ChirpConfig {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 4e-6,
            fs: 3.2e9,
            amplitude: 1.0,
        };
        let s = cfg.sawtooth();
        let sg = stft(&s.samples, s.fs, StftConfig::new(512));
        let track = sg.peak_track();
        // The baseband sweep goes −B/2 → +B/2; allow edge frames slack.
        let inner = &track[1..track.len() - 1];
        for w in inner.windows(2) {
            assert!(w[1] >= w[0] - 20e6, "non-monotone: {} → {}", w[0], w[1]);
        }
        assert!(inner[0] < -1e9);
        assert!(inner[inner.len() - 1] > 1e9);
    }

    #[test]
    fn frame_timing() {
        let fs = 1e6;
        let s = Signal::tone(fs, 0.0, 0.0, 1.0, 1024);
        let sg = stft(&s.samples, fs, StftConfig::new(256));
        assert_eq!(sg.frame_times.len(), sg.power.len());
        assert!((sg.frame_times[1] - 128e-6).abs() < 1e-12);
        assert_eq!(sg.power[0].len(), 256);
    }

    #[test]
    fn short_signal_yields_no_frames() {
        let sg = stft(&[Cpx::new(1.0, 0.0); 10], 1e6, StftConfig::new(256));
        assert!(sg.power.is_empty());
    }

    #[test]
    #[should_panic(expected = "bad hop")]
    fn rejects_oversized_hop() {
        let mut cfg = StftConfig::new(64);
        cfg.hop = 128;
        stft(&[Cpx::new(1.0, 0.0); 256], 1e6, cfg);
    }
}
