//! Complex arithmetic for baseband signal processing.
//!
//! The whole workspace represents RF signals as complex baseband samples, so
//! a small, fast, `Copy` complex type is the most heavily used data type in
//! the project. We implement it ourselves instead of pulling `num-complex`
//! to keep the dependency set to the approved list.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// `Cpx` is the sample type of every baseband waveform in MilBack. The
/// real/imaginary parts correspond to the I/Q components of the signal.
///
/// `repr(C)` guarantees the `[re, im]` memory order the SIMD butterfly
/// kernels ([`crate::simd`]) rely on when reinterpreting `&[Cpx]` as
/// packed scalar pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Cpx {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

/// The imaginary unit.
pub const J: Cpx = Cpx { re: 0.0, im: 1.0 };

/// Complex zero.
pub const ZERO: Cpx = Cpx { re: 0.0, im: 0.0 };

/// Complex one.
pub const ONE: Cpx = Cpx { re: 1.0, im: 0.0 };

impl Cpx {
    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar form: `mag * exp(j * phase)`.
    #[inline]
    pub fn from_polar(mag: f64, phase: f64) -> Self {
        Self {
            re: mag * phase.cos(),
            im: mag * phase.sin(),
        }
    }

    /// `exp(j * phase)` — a unit phasor. The workhorse of mixers, channel
    /// phase rotations and chirp synthesis.
    #[inline]
    pub fn cis(phase: f64) -> Self {
        Self {
            re: phase.cos(),
            im: phase.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude: `re² + im²`. Proportional to instantaneous power.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^self`.
    #[inline]
    pub fn exp(self) -> Self {
        let m = self.re.exp();
        Self {
            re: m * self.im.cos(),
            im: m * self.im.sin(),
        }
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Reciprocal `1/self`. Returns a non-finite result when `self` is zero,
    /// matching IEEE float division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sq();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let m = self.abs().sqrt();
        let p = self.arg() / 2.0;
        Self::from_polar(m, p)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Cpx {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Cpx {
    type Output = Cpx;
    #[inline]
    fn add(self, rhs: Cpx) -> Cpx {
        Cpx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Cpx {
    type Output = Cpx;
    #[inline]
    fn sub(self, rhs: Cpx) -> Cpx {
        Cpx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cpx {
    type Output = Cpx;
    #[inline]
    fn mul(self, rhs: Cpx) -> Cpx {
        Cpx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Cpx {
    type Output = Cpx;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w == z·w⁻¹ is the definition
    fn div(self, rhs: Cpx) -> Cpx {
        self * rhs.recip()
    }
}

impl Mul<f64> for Cpx {
    type Output = Cpx;
    #[inline]
    fn mul(self, k: f64) -> Cpx {
        self.scale(k)
    }
}

impl Mul<Cpx> for f64 {
    type Output = Cpx;
    #[inline]
    fn mul(self, c: Cpx) -> Cpx {
        c.scale(self)
    }
}

impl Div<f64> for Cpx {
    type Output = Cpx;
    #[inline]
    fn div(self, k: f64) -> Cpx {
        self.scale(1.0 / k)
    }
}

impl Neg for Cpx {
    type Output = Cpx;
    #[inline]
    fn neg(self) -> Cpx {
        Cpx::new(-self.re, -self.im)
    }
}

impl AddAssign for Cpx {
    #[inline]
    fn add_assign(&mut self, rhs: Cpx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Cpx {
    #[inline]
    fn sub_assign(&mut self, rhs: Cpx) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Cpx {
    #[inline]
    fn mul_assign(&mut self, rhs: Cpx) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Cpx {
    #[inline]
    fn mul_assign(&mut self, k: f64) {
        self.re *= k;
        self.im *= k;
    }
}

impl DivAssign<f64> for Cpx {
    #[inline]
    fn div_assign(&mut self, k: f64) {
        self.re /= k;
        self.im /= k;
    }
}

impl Sum for Cpx {
    fn sum<I: Iterator<Item = Cpx>>(iter: I) -> Cpx {
        iter.fold(ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Cpx, b: Cpx) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_accessors() {
        let c = Cpx::new(3.0, -4.0);
        assert_eq!(c.re, 3.0);
        assert_eq!(c.im, -4.0);
        assert_eq!(c.abs(), 5.0);
        assert_eq!(c.norm_sq(), 25.0);
    }

    #[test]
    fn polar_round_trip() {
        let c = Cpx::from_polar(2.0, 0.7);
        assert!((c.abs() - 2.0).abs() < 1e-12);
        assert!((c.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let p = k as f64 * PI / 8.0;
            let c = Cpx::cis(p);
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Cpx::new(1.5, -2.0);
        let b = Cpx::new(-0.25, 3.0);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(a * ONE, a));
        assert!(close(a + ZERO, a));
        assert!(close(-a + a, ZERO));
    }

    #[test]
    fn conjugate_properties() {
        let a = Cpx::new(1.0, 2.0);
        assert!(close(a.conj().conj(), a));
        let p = a * a.conj();
        assert!((p.re - a.norm_sq()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!(close(J * J, -ONE));
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let e = (J * PI).exp();
        assert!(close(e, -ONE));
    }

    #[test]
    fn sqrt_squares_back() {
        let a = Cpx::new(-3.0, 4.0);
        let r = a.sqrt();
        assert!(close(r * r, a));
    }

    #[test]
    fn scalar_ops() {
        let a = Cpx::new(2.0, -6.0);
        assert!(close(a * 0.5, Cpx::new(1.0, -3.0)));
        assert!(close(0.5 * a, Cpx::new(1.0, -3.0)));
        assert!(close(a / 2.0, Cpx::new(1.0, -3.0)));
    }

    #[test]
    fn sum_over_iterator() {
        let v = [Cpx::new(1.0, 1.0), Cpx::new(2.0, -1.0), Cpx::new(-3.0, 0.5)];
        let s: Cpx = v.iter().copied().sum();
        assert!(close(s, Cpx::new(0.0, 0.5)));
    }

    #[test]
    fn assign_ops() {
        let mut a = Cpx::new(1.0, 1.0);
        a += Cpx::new(1.0, -1.0);
        assert!(close(a, Cpx::new(2.0, 0.0)));
        a -= Cpx::new(1.0, 0.0);
        assert!(close(a, ONE));
        a *= Cpx::new(0.0, 2.0);
        assert!(close(a, Cpx::new(0.0, 2.0)));
        a *= 2.0;
        assert!(close(a, Cpx::new(0.0, 4.0)));
        a /= 4.0;
        assert!(close(a, J));
    }

    #[test]
    fn recip_of_zero_is_non_finite() {
        assert!(!ZERO.recip().is_finite());
    }
}
