//! Peak detection and spectral-peak refinement.
//!
//! Used by the AP's range processing (finding the node's beat-frequency
//! peak), the AP's orientation estimator (strongest reflected chirp
//! frequency) and the node's orientation estimator (the two power peaks of
//! the triangular chirp).

/// A detected peak in a sampled sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index of the local maximum.
    pub index: usize,
    /// Value at the maximum.
    pub value: f64,
    /// Sub-sample refined position (parabolic interpolation), in samples.
    pub refined: f64,
}

/// Index of the largest element. Returns `None` on an empty slice.
pub fn argmax(data: &[f64]) -> Option<usize> {
    data.iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
}

/// Parabolic (quadratic) interpolation of a peak at index `i` of `data`.
/// Returns the refined peak position in fractional samples. Falls back to
/// `i` at the boundaries or when the neighborhood is degenerate.
pub fn parabolic_refine(data: &[f64], i: usize) -> f64 {
    if i == 0 || i + 1 >= data.len() {
        return i as f64;
    }
    let (a, b, c) = (data[i - 1], data[i], data[i + 1]);
    let denom = a - 2.0 * b + c;
    if denom.abs() < 1e-300 {
        return i as f64;
    }
    let delta = 0.5 * (a - c) / denom;
    // A true local max gives |delta| <= 0.5; clamp to be safe against noise.
    i as f64 + delta.clamp(-0.5, 0.5)
}

/// Finds the single strongest peak with sub-sample refinement.
pub fn strongest_peak(data: &[f64]) -> Option<Peak> {
    let i = argmax(data)?;
    Some(Peak {
        index: i,
        value: data[i],
        refined: parabolic_refine(data, i),
    })
}

/// Finds all local maxima above `threshold`, enforcing a minimum spacing of
/// `min_separation` samples between retained peaks (strongest-first greedy
/// selection). Peaks are returned sorted by descending value.
pub fn find_peaks(data: &[f64], threshold: f64, min_separation: usize) -> Vec<Peak> {
    let n = data.len();
    let mut candidates: Vec<Peak> = Vec::new();
    for i in 0..n {
        let v = data[i];
        if v < threshold || v.is_nan() {
            continue;
        }
        let left_ok = i == 0 || data[i - 1] <= v;
        let right_ok = i + 1 >= n || data[i + 1] < v;
        if left_ok && right_ok {
            candidates.push(Peak {
                index: i,
                value: v,
                refined: parabolic_refine(data, i),
            });
        }
    }
    candidates.sort_by(|a, b| b.value.partial_cmp(&a.value).unwrap());
    let mut kept: Vec<Peak> = Vec::new();
    for p in candidates {
        if kept
            .iter()
            .all(|q| p.index.abs_diff(q.index) >= min_separation)
        {
            kept.push(p);
        }
    }
    kept
}

/// Finds the two strongest sufficiently-separated peaks and returns them in
/// time order `(first, second)`. This is the node-side orientation
/// primitive: the two beam-crossing power bumps of a triangular chirp.
pub fn two_peaks(data: &[f64], min_separation: usize) -> Option<(Peak, Peak)> {
    let peaks = find_peaks(data, f64::NEG_INFINITY, min_separation);
    if peaks.len() < 2 {
        return None;
    }
    let (a, b) = (peaks[0], peaks[1]);
    if a.index <= b.index {
        Some((a, b))
    } else {
        Some((b, a))
    }
}

/// Mean of the values strictly below the `q`-quantile — a simple robust
/// noise-floor estimate for thresholding spectra. Allocating wrapper
/// over [`noise_floor_with`].
pub fn noise_floor(data: &[f64], q: f64) -> f64 {
    noise_floor_with(data, q, &mut Vec::new())
}

/// [`noise_floor`] with a caller-owned sort buffer: identical result
/// (an unstable sort reorders only equal values, which cannot change
/// the sorted value sequence), zero allocations once `scratch` has
/// grown to `data.len()`.
pub fn noise_floor_with(data: &[f64], q: f64, scratch: &mut Vec<f64>) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if data.is_empty() {
        return 0.0;
    }
    crate::buffer::track_growth(scratch, data.len());
    scratch.clear();
    scratch.extend(data.iter().copied().filter(|v| !v.is_nan()));
    scratch.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let k = ((scratch.len() as f64 * q) as usize)
        .max(1)
        .min(scratch.len());
    scratch[..k].iter().sum::<f64>() / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0, 1.0]), Some(1));
    }

    #[test]
    fn parabolic_refine_recovers_true_vertex() {
        // Sample a parabola with vertex at x = 5.3.
        let data: Vec<f64> = (0..11).map(|i| 10.0 - (i as f64 - 5.3).powi(2)).collect();
        let i = argmax(&data).unwrap();
        let refined = parabolic_refine(&data, i);
        assert!((refined - 5.3).abs() < 1e-9, "refined {refined}");
    }

    #[test]
    fn parabolic_refine_boundary_falls_back() {
        let data = [5.0, 1.0, 0.0];
        assert_eq!(parabolic_refine(&data, 0), 0.0);
        assert_eq!(parabolic_refine(&data, 2), 2.0);
    }

    #[test]
    fn refine_on_flat_data_is_stable() {
        let data = [1.0, 1.0, 1.0];
        assert_eq!(parabolic_refine(&data, 1), 1.0);
    }

    #[test]
    fn strongest_peak_on_sinc() {
        let data: Vec<f64> = (0..64)
            .map(|i| {
                let x = (i as f64 - 20.25) * 0.7;
                if x.abs() < 1e-12 {
                    1.0
                } else {
                    (x.sin() / x).powi(2)
                }
            })
            .collect();
        let p = strongest_peak(&data).unwrap();
        assert_eq!(p.index, 20);
        assert!((p.refined - 20.25).abs() < 0.1, "refined {}", p.refined);
    }

    #[test]
    fn find_peaks_respects_threshold_and_separation() {
        let mut data = vec![0.0; 100];
        data[10] = 5.0;
        data[12] = 4.0; // too close to index 10, weaker → dropped
        data[50] = 3.0;
        data[90] = 0.5; // below threshold
        let peaks = find_peaks(&data, 1.0, 5);
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![10, 50]);
    }

    #[test]
    fn find_peaks_orders_by_value() {
        let mut data = vec![0.0; 50];
        data[5] = 2.0;
        data[25] = 7.0;
        data[45] = 4.0;
        let peaks = find_peaks(&data, 0.5, 3);
        let vals: Vec<f64> = peaks.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![7.0, 4.0, 2.0]);
    }

    #[test]
    fn two_peaks_in_time_order() {
        let mut data = vec![0.0; 100];
        data[70] = 9.0;
        data[20] = 6.0;
        let (a, b) = two_peaks(&data, 10).unwrap();
        assert_eq!(a.index, 20);
        assert_eq!(b.index, 70);
    }

    #[test]
    fn two_peaks_none_when_single() {
        let mut data = vec![0.0; 10];
        data[4] = 1.0;
        // Plateau of zeros yields one zero-peak candidate at index 0 as well;
        // enforce separation so only distinct structure counts.
        let got = two_peaks(&data, 20);
        assert!(got.is_none() || got.unwrap().0.value == 0.0);
    }

    #[test]
    fn noise_floor_estimate() {
        let mut data = vec![1.0; 90];
        data.extend(vec![100.0; 10]);
        let nf = noise_floor(&data, 0.5);
        assert!((nf - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noise_floor_empty() {
        assert_eq!(noise_floor(&[], 0.5), 0.0);
    }

    #[test]
    fn noise_floor_with_matches_allocating_bitwise() {
        let data: Vec<f64> = (0..500)
            .map(|i| ((i * 7919) % 251) as f64 * 0.013 + 0.1)
            .collect();
        let mut scratch = Vec::new();
        for q in [0.1, 0.5, 0.9] {
            let expect = noise_floor(&data, q);
            // Reused scratch across quantiles must not perturb results.
            assert_eq!(noise_floor_with(&data, q, &mut scratch), expect);
            assert_eq!(noise_floor_with(&data, q, &mut scratch), expect);
        }
    }
}
