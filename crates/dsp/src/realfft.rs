//! Real-input FFT via the packed half-length complex transform
//! ([`RealFftPlan`]).
//!
//! An N-point DFT of a *real* sequence has a conjugate-symmetric
//! spectrum, so computing it as a full complex transform wastes half the
//! butterflies. The classic halving packs the even/odd real samples into
//! an N/2-point complex sequence `z[k] = x[2k] + j·x[2k+1]`, runs one
//! N/2 complex FFT (the fused radix-4 kernels of [`crate::plan`]), and
//! untangles the result with one pass of precomputed `exp(-j2πk/N)`
//! factors — ~2× fewer butterfly flops and half the transform memory
//! traffic.
//!
//! Scope note (honesty over the paper's framing): the MilBack *default*
//! range pipeline models the AP's receiver as complex baseband, so its
//! dechirp products `rx·conj(tx)` are genuinely complex and keep using
//! the complex plan — that path is the workspace's bitwise reference and
//! is not rerouted. The real plan serves the range paths whose input is
//! genuinely real: real-IF (video) captures as produced by a real-mixer
//! front end and the envelope/video sweep workloads, routed through
//! `milback_ap`'s `range_spectrum_real_into`. Equivalence with the
//! complex plan on real inputs is pinned by tests to a tight tolerance
//! (the untangling reassociates sums, so it is not bitwise).

use crate::num::{Cpx, ZERO};
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

/// A reusable real-input FFT plan for one power-of-two length `n ≥ 2`.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    /// The N/2-point complex plan the packed transform runs on.
    half: Rc<crate::plan::FftPlan>,
    /// Untangling twiddles `exp(-j·2π·k/n)` for `k ∈ [0, n/2)`.
    untangle: Vec<Cpx>,
    /// Reusable packed-transform buffer (plans are thread-cached, so a
    /// `RefCell` suffices; warmed calls allocate nothing).
    scratch: RefCell<Vec<Cpx>>,
}

impl RealFftPlan {
    /// Builds a plan for real input length `n` (power of two, ≥ 2).
    ///
    /// # Panics
    /// Panics if `n < 2` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && crate::fft::is_pow2(n),
            "RealFftPlan requires a power-of-two length >= 2, got {n}"
        );
        let half = Rc::new(crate::plan::FftPlan::new(n / 2));
        let untangle = (0..n / 2)
            .map(|k| Cpx::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        Self {
            n,
            half,
            untangle,
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// The real input length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — construction rejects lengths below 2.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform producing the **full** `n`-bin spectrum
    /// (bins `n/2+1..n` filled from conjugate symmetry), so the output
    /// is a drop-in replacement for a complex FFT of the same real
    /// input. `out`'s capacity is reused; warmed calls allocate nothing.
    ///
    /// # Panics
    /// Panics if `input.len()` differs from the plan length, or on
    /// re-entrant use of the same plan (internal `RefCell` scratch).
    pub fn forward_full_into(&self, input: &[f64], out: &mut Vec<Cpx>) {
        let n = self.n;
        let h = n / 2;
        self.untangle_into(input, out);
        // Conjugate-symmetric upper half: X[n-k] = conj(X[k]).
        out.resize(n, ZERO);
        let (lo, hi) = out.split_at_mut(h + 1);
        for (d, s) in hi.iter_mut().rev().zip(lo[1..h].iter()) {
            *d = s.conj();
        }
    }

    /// Forward transform producing the non-redundant `n/2 + 1` bins
    /// (DC through Nyquist). Half the output traffic of
    /// [`RealFftPlan::forward_full_into`] for magnitude-only consumers.
    pub fn forward_half_into(&self, input: &[f64], out: &mut Vec<Cpx>) {
        self.untangle_into(input, out);
    }

    /// Allocating wrapper over [`RealFftPlan::forward_full_into`].
    pub fn forward_full(&self, input: &[f64]) -> Vec<Cpx> {
        let mut out = Vec::new();
        self.forward_full_into(input, &mut out);
        out
    }

    /// Packed half-length transform + untangling pass; writes bins
    /// `0..=n/2` into `out`.
    fn untangle_into(&self, input: &[f64], out: &mut Vec<Cpx>) {
        let n = self.n;
        let h = n / 2;
        assert_eq!(input.len(), n, "buffer length != plan length");
        let mut z = self.scratch.borrow_mut();
        crate::buffer::track_growth(&mut z, h);
        z.clear();
        z.extend(input.chunks_exact(2).map(|p| Cpx::new(p[0], p[1])));
        self.half.forward_in_place(&mut z);

        crate::buffer::track_growth(out, h + 1);
        out.clear();
        // DC and Nyquist come from Z[0] alone and are purely real.
        out.push(Cpx::new(z[0].re + z[0].im, 0.0));
        for k in 1..h {
            let zk = z[k];
            let zc = z[h - k].conj();
            // Even/odd-sample sub-spectra: Xe = (Z[k]+conj(Z[h−k]))/2,
            // Xo = (Z[k]−conj(Z[h−k]))·(−j/2); X[k] = Xe + w·Xo.
            let xe = (zk + zc) * 0.5;
            let d = zk - zc;
            let xo = Cpx::new(d.im * 0.5, -d.re * 0.5);
            out.push(xe + self.untangle[k] * xo);
        }
        out.push(Cpx::new(z[0].re - z[0].im, 0.0));
    }
}

thread_local! {
    static REAL_PLAN_CACHE: RefCell<HashMap<usize, Rc<RealFftPlan>>> =
        RefCell::new(HashMap::new());
}

/// Runs `f` with the cached real-input plan for length `n`, building it
/// on first use (per thread, like [`crate::plan::with_plan`]).
///
/// # Panics
/// Panics if `n < 2` or `n` is not a power of two.
pub fn with_real_plan<R>(n: usize, f: impl FnOnce(&RealFftPlan) -> R) -> R {
    let plan = REAL_PLAN_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(p) = cache.get(&n) {
            milback_telemetry::counter_add("dsp.plan_cache.hit.local", 1);
            p.clone()
        } else {
            milback_telemetry::counter_add("dsp.plan_cache.miss.local", 1);
            let p = Rc::new(RealFftPlan::new(n));
            cache.insert(n, p.clone());
            p
        }
    });
    f(&plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_ramp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.3 * (i as f64 * 0.11).cos() - 0.05)
            .collect()
    }

    /// Equivalence with the complex plan on real inputs. The untangling
    /// pass reassociates sums, so the contract is a tight tolerance
    /// (scaled by the spectrum peak), not bitwise identity.
    #[test]
    fn matches_complex_fft_on_real_input() {
        for n in [2usize, 4, 16, 256, 2048, 16384] {
            let x = real_ramp(n);
            let complex_in: Vec<Cpx> = x.iter().map(|&v| Cpx::new(v, 0.0)).collect();
            let reference = crate::fft::fft(&complex_in);
            let peak = reference.iter().map(|c| c.abs()).fold(1e-300, f64::max);

            let plan = RealFftPlan::new(n);
            let mut out = Vec::new();
            // Twice through the same scratch/output: stable results.
            for _ in 0..2 {
                plan.forward_full_into(&x, &mut out);
                assert_eq!(out.len(), n);
                for (k, (r, g)) in reference.iter().zip(&out).enumerate() {
                    assert!(
                        (*r - *g).abs() <= 1e-12 * peak,
                        "n={n} bin {k}: {r:?} vs {g:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn half_spectrum_is_prefix_of_full() {
        let n = 512;
        let x = real_ramp(n);
        let plan = RealFftPlan::new(n);
        let full = plan.forward_full(&x);
        let mut half = Vec::new();
        plan.forward_half_into(&x, &mut half);
        assert_eq!(half.len(), n / 2 + 1);
        assert_eq!(&full[..n / 2 + 1], &half[..]);
        // Symmetry of the reconstructed upper half.
        for k in 1..n / 2 {
            assert_eq!(full[n - k], full[k].conj());
        }
    }

    #[test]
    fn conjugate_symmetric_spectrum_means_real_input() {
        // Sanity: the spectrum of a real input from the real plan is
        // conjugate-symmetric with purely real DC/Nyquist bins.
        let n = 128;
        let plan = RealFftPlan::new(n);
        let full = plan.forward_full(&real_ramp(n));
        assert_eq!(full[0].im, 0.0);
        assert_eq!(full[n / 2].im, 0.0);
    }

    #[test]
    fn cached_plan_reused() {
        std::thread::spawn(|| {
            let x = real_ramp(64);
            let a = with_real_plan(64, |p| p.forward_full(&x));
            let b = with_real_plan(64, |p| p.forward_full(&x));
            assert_eq!(a, b);
        })
        .join()
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tiny_or_odd_lengths_rejected() {
        let _ = RealFftPlan::new(6);
    }
}
