//! # milback-dsp
//!
//! Digital-signal-processing substrate for the MilBack mmWave backscatter
//! reproduction. Everything here is pure, deterministic, and independent of
//! the RF/hardware layers:
//!
//! * [`num`] — complex arithmetic ([`num::Cpx`]),
//! * [`fft`] — radix-2 + Bluestein FFT, spectra and bin-frequency helpers,
//! * [`window`] — spectral windows and their gain/ENBW figures,
//! * [`signal`] — the complex-baseband [`signal::Signal`] container,
//! * [`chirp`] — FMCW sawtooth / triangular chirps and two-tone queries,
//! * [`filter`] — FIR, biquad and one-pole filters,
//! * [`noise`] — seeded Gaussian noise and thermal-noise arithmetic,
//! * [`detect`] — peak detection with sub-sample refinement,
//! * [`stats`] — means, percentiles and CDFs for experiment reporting,
//! * [`resample`] — decimation and rate conversion (MCU ADC bridging),
//! * [`xcorr`] — FFT cross-correlation and matched filtering,
//! * [`goertzel`] — single-bin DFT for cheap tone-power probes,
//! * [`stft`] — short-time Fourier transform (spectrograms),
//! * [`plan`] — cached FFT plans (precomputed twiddles, bit-reversal
//!   tables, Bluestein kernels, fused radix-4 butterflies, batched
//!   execution) backing the [`fft`] free functions,
//! * [`realfft`] — real-input FFT via a packed half-length complex
//!   transform + untangling pass (DESIGN.md §17),
//! * [`simd`] — runtime-dispatched AVX butterfly kernels, bitwise
//!   identical to the scalar loops (x86-64 only; scalar fallback
//!   everywhere else),
//! * [`num32`] / [`plan32`] — the opt-in f32 sweep tier
//!   ([`num32::Cpx32`], [`plan32::Fft32Plan`]): accuracy-bounded, never
//!   on the bitwise reference path,
//! * [`buffer`] — reusable-buffer helpers for the zero-allocation
//!   `_into` hot paths (DESIGN.md §12),
//! * [`phasor`] — phasor-recurrence carrier rotation with periodic
//!   exact re-anchoring (DESIGN.md §13),
//! * [`template`] — thread-local cache of synthesized reference
//!   waveforms (chirps, tones) keyed by exact config bits.
//!
//! ## Place in the paper's architecture
//!
//! This crate implements no paper section by itself; it is the numeric
//! substrate every reproduced section runs on. The FMCW dechirp/range
//! FFT of §5.1 is [`fft`] + [`window`], the triangular-chirp orientation
//! sensing of §5.2 uses [`chirp`] and [`stft`], the §6 OAQFM links run
//! on [`filter`] and [`goertzel`] tone probes, and every Monte-Carlo
//! figure draws its noise from [`noise`] and reports through [`stats`].
//!
//! ## Telemetry
//!
//! The plan cache reports `dsp.plan_cache.hit.local` /
//! `dsp.plan_cache.miss.local` counters and a `dsp.fft.size` histogram
//! through `milback-telemetry` when `MILBACK_TELEMETRY=1`; recording is
//! a no-op branch otherwise (README §Observability).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod buffer;
pub mod chirp;
pub mod detect;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod noise;
pub mod num;
pub mod num32;
pub mod phasor;
pub mod plan;
pub mod plan32;
pub mod realfft;
pub mod resample;
pub mod signal;
pub mod simd;
pub mod stats;
pub mod stft;
pub mod template;
pub mod window;
pub mod xcorr;

pub use num::Cpx;
pub use signal::Signal;
