//! # milback-dsp
//!
//! Digital-signal-processing substrate for the MilBack mmWave backscatter
//! reproduction. Everything here is pure, deterministic, and independent of
//! the RF/hardware layers:
//!
//! * [`num`] — complex arithmetic ([`num::Cpx`]),
//! * [`fft`] — radix-2 + Bluestein FFT, spectra and bin-frequency helpers,
//! * [`window`] — spectral windows and their gain/ENBW figures,
//! * [`signal`] — the complex-baseband [`signal::Signal`] container,
//! * [`chirp`] — FMCW sawtooth / triangular chirps and two-tone queries,
//! * [`filter`] — FIR, biquad and one-pole filters,
//! * [`noise`] — seeded Gaussian noise and thermal-noise arithmetic,
//! * [`detect`] — peak detection with sub-sample refinement,
//! * [`stats`] — means, percentiles and CDFs for experiment reporting,
//! * [`resample`] — decimation and rate conversion (MCU ADC bridging),
//! * [`xcorr`] — FFT cross-correlation and matched filtering,
//! * [`goertzel`] — single-bin DFT for cheap tone-power probes,
//! * [`stft`] — short-time Fourier transform (spectrograms),
//! * [`plan`] — cached FFT plans (precomputed twiddles, bit-reversal
//!   tables, Bluestein kernels) backing the [`fft`] free functions.

pub mod chirp;
pub mod detect;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod noise;
pub mod num;
pub mod plan;
pub mod resample;
pub mod signal;
pub mod stats;
pub mod stft;
pub mod window;
pub mod xcorr;

pub use num::Cpx;
pub use signal::Signal;
