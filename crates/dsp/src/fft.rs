//! Fast Fourier transforms.
//!
//! Provides an iterative radix-2 Cooley-Tukey FFT for power-of-two sizes and
//! a Bluestein (chirp-z) fallback for arbitrary sizes, so callers never have
//! to care about the length of their capture buffers. The AP's range
//! processing, background subtraction and spectrum analysis are all built on
//! this module.
//!
//! Conventions: `fft` computes the unnormalized forward DFT
//! `X[k] = Σ_n x[n]·exp(-j2πkn/N)`; `ifft` applies the `1/N` factor, so
//! `ifft(fft(x)) == x`.
//!
//! These free functions are thin wrappers over the cached plans in
//! [`crate::plan`]: twiddle tables, bit-reversal permutations and the
//! Bluestein chirp/filter spectra are computed once per size per thread and
//! reused, so repeated transforms of the same length (the common case in
//! Monte-Carlo sweeps) pay only the butterfly cost. Explicit
//! [`crate::plan::FftPlan`] usage produces bitwise-identical results.

use crate::num::Cpx;
use crate::plan;

/// Returns true when `n` is a power of two (and non-zero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Next power of two ≥ `n`.
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place forward FFT for power-of-two lengths.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_pow2_in_place(data: &mut [Cpx]) {
    assert!(
        is_pow2(data.len()),
        "fft_pow2_in_place requires power-of-two length, got {}",
        data.len()
    );
    plan::with_plan(data.len(), |p| p.forward_in_place(data));
}

/// Forward FFT of arbitrary length. Power-of-two inputs take the radix-2
/// path; other lengths use the Bluestein chirp-z algorithm.
pub fn fft(input: &[Cpx]) -> Vec<Cpx> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if is_pow2(n) {
        plan::with_plan(n, |p| p.forward(input))
    } else {
        plan::bluestein_cached(input, false)
    }
}

/// Inverse FFT of arbitrary length, normalized by `1/N` so that
/// `ifft(fft(x)) == x`.
pub fn ifft(input: &[Cpx]) -> Vec<Cpx> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if is_pow2(n) {
        plan::with_plan(n, |p| p.inverse(input))
    } else {
        let mut out = plan::bluestein_cached(input, true);
        let inv_n = 1.0 / n as f64;
        for c in out.iter_mut() {
            *c *= inv_n;
        }
        out
    }
}

/// In-place inverse FFT for power-of-two lengths (normalized by `1/N`).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn ifft_pow2_in_place(data: &mut [Cpx]) {
    assert!(
        is_pow2(data.len()),
        "ifft_pow2_in_place requires power-of-two length, got {}",
        data.len()
    );
    plan::with_plan(data.len(), |p| p.inverse_in_place(data));
}

/// Frequency (Hz) of each FFT bin for a transform of length `n` at sample
/// rate `fs`, in natural FFT order: `[0, fs/n, …, fs/2, -fs/2+fs/n, …, -fs/n]`.
pub fn fft_freqs(n: usize, fs: f64) -> Vec<f64> {
    let step = fs / n as f64;
    (0..n)
        .map(|k| {
            if k <= (n - 1) / 2 {
                k as f64 * step
            } else {
                (k as f64 - n as f64) * step
            }
        })
        .collect()
}

/// Reorders an FFT output so that the zero-frequency bin is centered
/// (matches `fftshift` in NumPy/MATLAB).
pub fn fft_shift<T: Copy>(data: &[T]) -> Vec<T> {
    let n = data.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&data[half..]);
    out.extend_from_slice(&data[..half]);
    out
}

/// Power spectrum `|X[k]|²` of a signal (no window, no normalization).
pub fn power_spectrum(input: &[Cpx]) -> Vec<f64> {
    fft(input).iter().map(|c| c.norm_sq()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::{J, ZERO};
    use std::f64::consts::PI;

    /// Naive O(N²) DFT used as the reference implementation.
    fn dft(input: &[Cpx]) -> Vec<Cpx> {
        let n = input.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| input[t] * Cpx::cis(-2.0 * PI * (k * t) as f64 / n as f64))
                    .sum()
            })
            .collect()
    }

    fn assert_close(a: &[Cpx], b: &[Cpx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    fn ramp(n: usize) -> Vec<Cpx> {
        (0..n)
            .map(|i| Cpx::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn matches_naive_dft_pow2() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let x = ramp(n);
            assert_close(&fft(&x), &dft(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn matches_naive_dft_non_pow2() {
        for n in [3usize, 5, 6, 7, 12, 100, 257] {
            let x = ramp(n);
            assert_close(&fft(&x), &dft(&x), 1e-7 * n as f64);
        }
    }

    #[test]
    fn round_trip_identity() {
        for n in [1usize, 2, 8, 15, 64, 100] {
            let x = ramp(n);
            assert_close(&ifft(&fft(&x)), &x, 1e-9 * n as f64);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![ZERO; 32];
        x[0] = Cpx::new(1.0, 0.0);
        let y = fft(&x);
        for c in y {
            assert!((c - Cpx::new(1.0, 0.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 128;
        let k0 = 17;
        let x: Vec<Cpx> = (0..n)
            .map(|t| Cpx::cis(2.0 * PI * (k0 * t) as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, c) in y.iter().enumerate() {
            if k == k0 {
                assert!((c.abs() - n as f64).abs() < 1e-8);
            } else {
                assert!(c.abs() < 1e-7, "leakage at bin {k}: {}", c.abs());
            }
        }
    }

    #[test]
    fn parseval_theorem() {
        let x = ramp(200);
        let y = fft(&x);
        let time_energy: f64 = x.iter().map(|c| c.norm_sq()).sum();
        let freq_energy: f64 = y.iter().map(|c| c.norm_sq()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn linearity() {
        let a = ramp(96);
        let b: Vec<Cpx> = ramp(96)
            .iter()
            .map(|c| *c * J + Cpx::new(0.5, 0.0))
            .collect();
        let sum: Vec<Cpx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let expect: Vec<Cpx> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_close(&fsum, &expect, 1e-8);
    }

    #[test]
    fn fft_freqs_layout() {
        let f = fft_freqs(8, 800.0);
        assert_eq!(
            f,
            vec![0.0, 100.0, 200.0, 300.0, -400.0, -300.0, -200.0, -100.0]
        );
        let f = fft_freqs(5, 500.0);
        assert_eq!(f, vec![0.0, 100.0, 200.0, -200.0, -100.0]);
    }

    #[test]
    fn fft_shift_centers_dc() {
        let shifted = fft_shift(&[0, 1, 2, 3, -4, -3, -2, -1]);
        assert_eq!(shifted, vec![-4, -3, -2, -1, 0, 1, 2, 3]);
        let odd = fft_shift(&[0, 1, 2, -2, -1]);
        assert_eq!(odd, vec![-2, -1, 0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    fn power_spectrum_of_tone() {
        let n = 64;
        let x: Vec<Cpx> = (0..n)
            .map(|t| Cpx::cis(2.0 * PI * 5.0 * t as f64 / n as f64))
            .collect();
        let p = power_spectrum(&x);
        let peak = p.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - (n * n) as f64).abs() < 1e-6);
        assert_eq!(p.iter().position(|v| *v == peak), Some(5));
    }
}
