//! Window functions for spectral analysis.
//!
//! The AP's range FFT uses a Hann window to keep strong clutter returns from
//! leaking over the node's weak backscatter peak; the other classic windows
//! are provided for experimentation and for the ablation benches.

use std::f64::consts::PI;

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// Rectangular (no) window: best resolution, worst leakage.
    Rect,
    /// Hann window: −31 dB first side lobe, the default for range processing.
    Hann,
    /// Hamming window: −41 dB first side lobe, slightly wider main lobe.
    Hamming,
    /// Blackman window: −58 dB side lobes for clutter-dominated scenes.
    Blackman,
    /// 4-term Blackman-Harris: −92 dB side lobes.
    BlackmanHarris,
}

impl Window {
    /// Evaluates the window at sample `i` of an `n`-point window.
    ///
    /// Uses the *periodic* (DFT-even) convention, which is the right one for
    /// spectral analysis with an `n`-point FFT.
    pub fn coeff(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = 2.0 * PI * i as f64 / n as f64;
        match self {
            Window::Rect => 1.0,
            Window::Hann => 0.5 - 0.5 * x.cos(),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
            Window::BlackmanHarris => {
                0.35875 - 0.48829 * x.cos() + 0.14128 * (2.0 * x).cos() - 0.01168 * (3.0 * x).cos()
            }
        }
    }

    /// Generates the full `n`-point window.
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coeff(i, n)).collect()
    }

    /// Coherent gain: mean of the window coefficients. Dividing a windowed
    /// FFT peak by `n * coherent_gain` recovers the amplitude of a tone.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        self.generate(n).iter().sum::<f64>() / n as f64
    }

    /// Noise-equivalent bandwidth in bins. Multiplying the per-bin noise
    /// power by this factor gives the effective noise power under the peak.
    pub fn enbw(self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let w = self.generate(n);
        let s1: f64 = w.iter().sum();
        let s2: f64 = w.iter().map(|v| v * v).sum();
        n as f64 * s2 / (s1 * s1)
    }
}

/// Zeroth-order modified Bessel function of the first kind, via its
/// rapidly-converging power series — the kernel of the Kaiser window.
pub fn bessel_i0(x: f64) -> f64 {
    let mut sum = 1.0;
    let mut term = 1.0;
    let half_x = x / 2.0;
    for k in 1..64 {
        term *= (half_x / k as f64) * (half_x / k as f64);
        sum += term;
        if term < 1e-18 * sum {
            break;
        }
    }
    sum
}

/// Generates an `n`-point Kaiser window with shape parameter `beta`.
/// Kaiser trades main-lobe width against side-lobe level continuously:
/// β ≈ 0 is rectangular, β ≈ 8.6 matches Blackman.
pub fn kaiser(n: usize, beta: f64) -> Vec<f64> {
    assert!(beta >= 0.0, "beta must be non-negative");
    if n <= 1 {
        return vec![1.0; n];
    }
    let denom = bessel_i0(beta);
    let m = (n - 1) as f64;
    (0..n)
        .map(|i| {
            let r = 2.0 * i as f64 / m - 1.0;
            bessel_i0(beta * (1.0 - r * r).sqrt()) / denom
        })
        .collect()
}

/// Kaiser β for a desired side-lobe attenuation `atten_db` (Kaiser's
/// empirical formula).
pub fn kaiser_beta(atten_db: f64) -> f64 {
    if atten_db > 50.0 {
        0.1102 * (atten_db - 8.7)
    } else if atten_db >= 21.0 {
        0.5842 * (atten_db - 21.0).powf(0.4) + 0.07886 * (atten_db - 21.0)
    } else {
        0.0
    }
}

/// Multiplies a complex signal by a window in place.
pub fn apply_window(data: &mut [crate::num::Cpx], window: Window) {
    let n = data.len();
    for (i, c) in data.iter_mut().enumerate() {
        *c *= window.coeff(i, n);
    }
}

/// Per-thread cache of generated window coefficient vectors, keyed by
/// `(shape, length)`. A 16384-point Hann window costs 16384 `cos` calls
/// to generate; the range pipeline applies it on *every* chirp, so the
/// hot paths multiply by the cached table instead. Coefficients come
/// from the same [`Window::coeff`] formula, so the cached apply is
/// bitwise identical to [`apply_window`].
const MAX_CACHED_WINDOWS: usize = 64;

type WindowCache =
    std::cell::RefCell<std::collections::HashMap<(Window, usize), std::rc::Rc<[f64]>>>;

thread_local! {
    static WINDOW_CACHE: WindowCache = std::cell::RefCell::new(std::collections::HashMap::new());
}

/// The cached `n`-point coefficient table for `window` (built on first
/// use per thread). Clear-on-overflow capped like the waveform template
/// cache, so pathological size churn cannot grow memory unboundedly.
pub fn cached_coeffs(window: Window, n: usize) -> std::rc::Rc<[f64]> {
    WINDOW_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some(w) = cache.get(&(window, n)) {
            milback_telemetry::counter_add("dsp.window_cache.hit.local", 1);
            return w.clone();
        }
        milback_telemetry::counter_add("dsp.window_cache.miss.local", 1);
        if cache.len() >= MAX_CACHED_WINDOWS {
            cache.clear();
        }
        let w: std::rc::Rc<[f64]> = window.generate(n).into();
        cache.insert((window, n), w.clone());
        w
    })
}

/// [`apply_window`] through the per-thread coefficient cache: bitwise
/// identical results, no per-sample `cos`, zero steady-state allocation.
pub fn apply_window_cached(data: &mut [crate::num::Cpx], window: Window) {
    if matches!(window, Window::Rect) || data.len() <= 1 {
        return; // coeff ≡ 1.0: multiplying is the identity, bit for bit
    }
    let w = cached_coeffs(window, data.len());
    for (c, k) in data.iter_mut().zip(w.iter()) {
        *c *= *k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::Cpx;

    #[test]
    fn rect_is_all_ones() {
        assert!(Window::Rect.generate(16).iter().all(|v| *v == 1.0));
        assert!((Window::Rect.coherent_gain(16) - 1.0).abs() < 1e-12);
        assert!((Window::Rect.enbw(16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_endpoints_and_peak() {
        let w = Window::Hann.generate(64);
        assert!(w[0].abs() < 1e-12); // periodic Hann starts at 0
        assert!((w[32] - 1.0).abs() < 1e-12); // peak at n/2
    }

    #[test]
    fn windows_bounded_zero_one() {
        for win in [
            Window::Rect,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
        ] {
            for v in win.generate(97) {
                assert!(
                    (-1e-9..=1.0 + 1e-9).contains(&v),
                    "{win:?} out of range: {v}"
                );
            }
        }
    }

    #[test]
    fn hann_coherent_gain_is_half() {
        assert!((Window::Hann.coherent_gain(1024) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hann_enbw_is_1_5() {
        assert!((Window::Hann.enbw(1024) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(Window::Hann.generate(0).len(), 0);
        assert_eq!(Window::Hann.generate(1), vec![1.0]);
        assert_eq!(Window::Blackman.coherent_gain(0), 1.0);
    }

    #[test]
    fn bessel_i0_known_values() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        // I0(1) ≈ 1.2660658, I0(5) ≈ 27.2398718.
        assert!((bessel_i0(1.0) - 1.2660658).abs() < 1e-6);
        assert!((bessel_i0(5.0) - 27.2398718).abs() < 1e-5);
    }

    #[test]
    fn kaiser_shape() {
        let w = kaiser(65, 8.0);
        // Symmetric, peak 1 at the center, small at the edges.
        assert!((w[32] - 1.0).abs() < 1e-12);
        for i in 0..32 {
            assert!((w[i] - w[64 - i]).abs() < 1e-12, "asymmetry at {i}");
        }
        assert!(w[0] < 0.01);
        // Zero beta is rectangular.
        assert!(kaiser(16, 0.0).iter().all(|v| (*v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn kaiser_beta_formula() {
        assert_eq!(kaiser_beta(10.0), 0.0);
        assert!((kaiser_beta(60.0) - 0.1102 * 51.3).abs() < 1e-9);
        let b30 = kaiser_beta(30.0);
        assert!(b30 > 1.0 && b30 < 3.5, "{b30}");
    }

    #[test]
    fn kaiser_sidelobes_meet_spec() {
        use crate::fft::fft;
        use crate::num::Cpx;
        // 60 dB design: window's FFT side lobes must sit ≤ −55 dB.
        let n = 128;
        let w = kaiser(n, kaiser_beta(60.0));
        let mut buf: Vec<Cpx> = w.iter().map(|v| Cpx::new(*v, 0.0)).collect();
        buf.resize(n * 8, crate::num::ZERO);
        let spec: Vec<f64> = fft(&buf).iter().map(|c| c.norm_sq()).collect();
        let peak = spec[0];
        // Skip the main lobe (≈6 window bins at this β = 48 padded bins).
        let worst = spec[48..spec.len() / 2]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let rel_db = 10.0 * (worst / peak).log10();
        assert!(rel_db < -55.0, "side lobes {rel_db} dB");
    }

    #[test]
    fn cached_apply_matches_uncached_bitwise() {
        for win in [
            Window::Rect,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
        ] {
            for n in [1usize, 7, 64, 1000] {
                let base: Vec<Cpx> = (0..n)
                    .map(|i| Cpx::new(i as f64 * 0.3 - 1.0, -(i as f64) * 0.7))
                    .collect();
                let mut plain = base.clone();
                apply_window(&mut plain, win);
                let mut cached = base.clone();
                // Twice: the second call hits the cache.
                apply_window_cached(&mut cached, win);
                assert_eq!(plain, cached, "{win:?} n={n}");
                let mut again = base;
                apply_window_cached(&mut again, win);
                assert_eq!(plain, again, "{win:?} n={n} (cache hit)");
            }
        }
    }

    #[test]
    fn apply_window_scales_samples() {
        let mut v = vec![Cpx::new(2.0, 0.0); 8];
        apply_window(&mut v, Window::Hann);
        assert!(v[0].abs() < 1e-12);
        assert!((v[4].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_tone_amplitude_recovery() {
        use crate::fft::fft;
        use std::f64::consts::PI;
        let n = 256;
        let amp = 3.0;
        let k0 = 40;
        let mut x: Vec<Cpx> = (0..n)
            .map(|t| Cpx::from_polar(amp, 2.0 * PI * (k0 * t) as f64 / n as f64))
            .collect();
        apply_window(&mut x, Window::Hann);
        let y = fft(&x);
        let peak = y[k0].abs();
        let recovered = peak / (n as f64 * Window::Hann.coherent_gain(n));
        assert!((recovered - amp).abs() < 1e-9);
    }
}
