//! Reusable-buffer primitives for the zero-allocation hot paths.
//!
//! The DSP and AP pipelines run the same transform chain millions of
//! times per sweep, so the `_into` variants across the workspace write
//! into caller-owned buffers instead of allocating. These helpers keep
//! that discipline observable: every fill site reports a
//! `dsp.workspace.grow.local` telemetry count when the target buffer
//! must reallocate, so a warmed-up hot loop shows a growth count of
//! zero (see DESIGN.md §12).
//!
//! The counter carries the `.local` suffix because buffer capacities are
//! per-thread state: different `MILBACK_THREADS` settings warm different
//! numbers of workspaces, so growth counts are excluded from the
//! deterministic telemetry view.

use crate::num::Cpx;
use milback_telemetry as telemetry;

/// Records a `dsp.workspace.grow.local` count if filling `buf` to
/// `needed` elements would force a reallocation. Call before the fill.
#[inline]
pub fn track_growth<T>(buf: &mut Vec<T>, needed: usize) {
    if needed > buf.capacity() {
        telemetry::counter_add("dsp.workspace.grow.local", 1);
    }
}

/// Overwrites `out` with a copy of `src`, reusing `out`'s capacity.
/// Allocation-free once `out` has grown to `src.len()`.
#[inline]
pub fn copy_into(src: &[Cpx], out: &mut Vec<Cpx>) {
    track_growth(out, src.len());
    out.clear();
    out.extend_from_slice(src);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::ZERO;

    #[test]
    fn copy_into_reuses_capacity() {
        let src = vec![ZERO; 64];
        let mut out = Vec::new();
        copy_into(&src, &mut out);
        assert_eq!(out, src);
        let cap = out.capacity();
        copy_into(&src, &mut out);
        assert_eq!(out.capacity(), cap, "warmed copy must not reallocate");
    }

    #[test]
    fn copy_into_shrinks_logical_length() {
        let mut out = vec![ZERO; 100];
        let src = vec![Cpx::new(1.0, 0.0); 3];
        copy_into(&src, &mut out);
        assert_eq!(out.len(), 3);
        assert!(out.capacity() >= 100);
    }
}
