//! Power-of-two-bucketed histograms.
//!
//! A [`Histogram`] records `u64` values (durations in nanoseconds, FFT
//! sizes, bit-error counts, …) into 66 fixed buckets: bucket 0 holds the
//! value `0`, bucket `k ≥ 1` holds the half-open range `[2^(k−1), 2^k)`.
//! Fixed log₂ buckets keep recording allocation-free and make merging two
//! histograms an element-wise integer addition — which is what lets
//! per-thread shards combine into totals identical to a serial run.

/// Number of buckets: one for zero plus one per bit of a `u64`'s range.
pub const N_BUCKETS: usize = 65;

/// Bucket index for a value: `0` for `0`, otherwise `floor(log2(v)) + 1`.
///
/// ```
/// use milback_telemetry::bucket_index;
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(1), 1);
/// assert_eq!(bucket_index(2), 2);
/// assert_eq!(bucket_index(3), 2);
/// assert_eq!(bucket_index(4), 3);
/// assert_eq!(bucket_index(u64::MAX), 64);
/// ```
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`: `0` for bucket 0, `2^i − 1`
/// otherwise.
///
/// ```
/// use milback_telemetry::bucket_upper_bound;
/// assert_eq!(bucket_upper_bound(0), 0);
/// assert_eq!(bucket_upper_bound(1), 1);
/// assert_eq!(bucket_upper_bound(3), 7);
/// assert_eq!(bucket_upper_bound(64), u64::MAX);
/// ```
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// All arithmetic saturates (`count`, buckets) or is exact (`sum` is a
/// `u128`, wide enough for 2⁶⁴ observations of 2⁶⁴ each not to overflow
/// in any realistic run), so merging shards in any order yields the same
/// totals.
///
/// ```
/// use milback_telemetry::Histogram;
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(5);
/// h.record(5);
/// assert_eq!(h.count, 3);
/// assert_eq!(h.sum, 10);
/// assert_eq!(h.min, 0);
/// assert_eq!(h.max, 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values (saturating).
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u128,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (`0` when empty).
    pub max: u64,
    /// Per-bucket counts, indexed by [`bucket_index`] (saturating).
    pub buckets: [u64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; N_BUCKETS],
        }
    }

    /// Whether no values have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.count = self.count.saturating_add(1);
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let i = bucket_index(v);
        self.buckets[i] = self.buckets[i].saturating_add(1);
    }

    /// Mean of the recorded values (`None` when empty).
    ///
    /// ```
    /// use milback_telemetry::Histogram;
    /// let mut h = Histogram::new();
    /// assert_eq!(h.mean(), None);
    /// h.record(2);
    /// h.record(4);
    /// assert_eq!(h.mean(), Some(3.0));
    /// ```
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Adds every observation of `other` into `self`. Commutative and
    /// associative, so shard merge order never changes the totals.
    pub fn merge(&mut self, other: &Self) {
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Exhaustive check of the boundary pairs (2^k − 1, 2^k).
        for k in 1..64 {
            let edge = 1u64 << k;
            assert_eq!(bucket_index(edge - 1), k, "below 2^{k}");
            assert_eq!(bucket_index(edge), k + 1, "at 2^{k}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn upper_bounds_are_inclusive() {
        for i in 0..N_BUCKETS {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "bucket {i} ub {ub}");
            if i < 64 {
                assert_eq!(bucket_index(ub + 1), i + 1);
            }
        }
    }

    #[test]
    fn record_fills_expected_bucket() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1024)
        assert_eq!(h.buckets[64], 1); // u64::MAX
        assert_eq!(h.count, 7);
    }

    #[test]
    fn count_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.count = u64::MAX;
        h.buckets[1] = u64::MAX;
        h.record(1);
        assert_eq!(h.count, u64::MAX);
        assert_eq!(h.buckets[1], u64::MAX);
    }

    #[test]
    fn merge_matches_serial_recording() {
        let values: Vec<u64> = (0..1000).map(|i| i * i % 777).collect();
        let mut serial = Histogram::new();
        for &v in &values {
            serial.record(v);
        }
        // Split across three "shards" and merge in a scrambled order.
        let mut shards = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &v) in values.iter().enumerate() {
            shards[i % 3].record(v);
        }
        let mut merged = Histogram::new();
        for idx in [2, 0, 1] {
            merged.merge(&shards[idx]);
        }
        assert_eq!(merged, serial);
    }

    #[test]
    fn empty_histogram_stats() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.min, u64::MAX);
        assert_eq!(h.max, 0);
    }
}
