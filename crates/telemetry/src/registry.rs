//! The sharded metric registry.
//!
//! Every thread that records a metric lazily creates a *shard* — a
//! mutex-protected triple of counter/gauge/histogram maps — and registers
//! it in a global list. Recording locks only the calling thread's own
//! shard (uncontended in the batch engine's one-shard-per-worker
//! pattern); [`snapshot()`] and [`reset`] walk the global list. Shards
//! outlive their threads (the global list holds an `Arc`), so metrics
//! recorded by `milback::batch` workers remain visible after the scoped
//! threads join — which is exactly when the driver snapshots.

use crate::hist::Histogram;
use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One thread's private metric store.
#[derive(Debug, Default)]
struct Shard {
    counters: HashMap<&'static str, u64>,
    gauges: HashMap<&'static str, f64>,
    hists: HashMap<&'static str, Histogram>,
}

/// Global list of every shard ever created (shards persist after their
/// thread exits so late snapshots lose nothing).
fn all_shards() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    static SHARDS: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Mutex<Shard>> = {
        let shard = Arc::new(Mutex::new(Shard::default()));
        all_shards().lock().unwrap().push(shard.clone());
        shard
    };
}

#[inline]
fn with_local(f: impl FnOnce(&mut Shard)) {
    LOCAL.with(|s| f(&mut s.lock().unwrap()));
}

/// Adds `delta` to the named counter (saturating at `u64::MAX`). A no-op
/// branch when telemetry is [disabled](crate::enabled).
///
/// ```
/// milback_telemetry::set_enabled(true);
/// milback_telemetry::reset();
/// milback_telemetry::counter_add("doc.registry.hits", 2);
/// milback_telemetry::counter_add("doc.registry.hits", 1);
/// assert_eq!(milback_telemetry::snapshot().counters["doc.registry.hits"], 3);
/// milback_telemetry::set_enabled(false);
/// ```
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with_local(|s| {
        let c = s.counters.entry(name).or_insert(0);
        *c = c.saturating_add(delta);
    });
}

/// Sets the named gauge to `value` on this thread's shard. Shards merge
/// gauges by **maximum** — the only order-free combination of last-value
/// semantics — so gauges are best set from a single driver thread, and
/// [`Snapshot::deterministic_view`] excludes them.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with_local(|s| {
        s.gauges.insert(name, value);
    });
}

/// Records `value` into the named histogram. A no-op branch when
/// telemetry is [disabled](crate::enabled).
///
/// ```
/// milback_telemetry::set_enabled(true);
/// milback_telemetry::reset();
/// milback_telemetry::observe("doc.registry.sizes", 4096);
/// let h = &milback_telemetry::snapshot().histograms["doc.registry.sizes"];
/// assert_eq!((h.count, h.sum), (1, 4096));
/// milback_telemetry::set_enabled(false);
/// ```
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !crate::enabled() {
        return;
    }
    with_local(|s| {
        s.hists.entry(name).or_default().record(value);
    });
}

/// Merges every shard into one [`Snapshot`]: counters and histograms
/// add, gauges take the maximum. Safe to call while telemetry is off
/// (it reads whatever has been recorded so far).
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    let shards = all_shards().lock().unwrap();
    for shard in shards.iter() {
        let shard = shard.lock().unwrap();
        for (&name, &v) in &shard.counters {
            let c = snap.counters.entry(name.to_string()).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (&name, &v) in &shard.gauges {
            let g = snap.gauges.entry(name.to_string()).or_insert(f64::MIN);
            *g = g.max(v);
        }
        for (&name, h) in &shard.hists {
            snap.histograms
                .entry(name.to_string())
                .or_insert_with(HistogramSnapshot::empty)
                .merge_from(h);
        }
    }
    snap
}

/// Clears every shard (all threads' recorded metrics). The benches call
/// this after warm-up so the exported snapshot covers only the measured
/// region.
pub fn reset() {
    let shards = all_shards().lock().unwrap();
    for shard in shards.iter() {
        let mut shard = shard.lock().unwrap();
        shard.counters.clear();
        shard.gauges.clear();
        shard.hists.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as lock_registry;

    #[test]
    fn counter_saturates_at_max() {
        let _g = lock_registry();
        crate::set_enabled(true);
        reset();
        counter_add("test.overflow", u64::MAX - 1);
        counter_add("test.overflow", 10);
        assert_eq!(snapshot().counters["test.overflow"], u64::MAX);
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock_registry();
        crate::set_enabled(true);
        reset();
        crate::set_enabled(false);
        counter_add("test.disabled", 1);
        observe("test.disabled.h", 1);
        gauge_set("test.disabled.g", 1.0);
        let snap = snapshot();
        assert!(!snap.counters.contains_key("test.disabled"));
        assert!(!snap.histograms.contains_key("test.disabled.h"));
        assert!(!snap.gauges.contains_key("test.disabled.g"));
    }

    #[test]
    fn shards_merge_across_threads() {
        let _g = lock_registry();
        crate::set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100u64 {
                        counter_add("test.threads.count", 1);
                        observe("test.threads.vals", i);
                    }
                });
            }
        });
        let snap = snapshot();
        assert_eq!(snap.counters["test.threads.count"], 400);
        let h = &snap.histograms["test.threads.vals"];
        assert_eq!(h.count, 400);
        assert_eq!(h.sum, 4 * (0..100u128).sum::<u128>());
        crate::set_enabled(false);
    }

    #[test]
    fn gauges_merge_by_max() {
        let _g = lock_registry();
        crate::set_enabled(true);
        reset();
        gauge_set("test.gauge", 2.5);
        std::thread::scope(|s| {
            s.spawn(|| gauge_set("test.gauge", 7.0));
        });
        assert_eq!(snapshot().gauges["test.gauge"], 7.0);
        crate::set_enabled(false);
    }

    #[test]
    fn reset_clears_all_shards() {
        let _g = lock_registry();
        crate::set_enabled(true);
        reset();
        counter_add("test.reset", 5);
        std::thread::scope(|s| {
            s.spawn(|| counter_add("test.reset", 5));
        });
        reset();
        assert!(!snapshot().counters.contains_key("test.reset"));
        crate::set_enabled(false);
    }
}
