//! Point-in-time snapshots of the registry and their JSON encoding.
//!
//! A [`Snapshot`] is an ordinary data structure (sorted maps, no locks)
//! produced by [`crate::snapshot()`]; [`Snapshot::to_json`] renders it as
//! a self-contained JSON object that `bench_engine` embeds under the
//! `"telemetry"` key of its `BENCH_*.json` output. The encoder is
//! hand-rolled (the workspace builds offline, without serde) and emits
//! keys in sorted order so snapshots diff cleanly.

use crate::hist::{bucket_upper_bound, Histogram, N_BUCKETS};
use std::collections::BTreeMap;

/// Aggregated view of one histogram, merge of every shard's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Exact sum of all observations.
    pub sum: u128,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (`0` when empty).
    pub max: u64,
    /// `(inclusive upper bound, count)` for each non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element of [`Self::merge_from`]).
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Nearest-rank quantile estimate, `q` in `[0, 1]` (`None` when
    /// empty). Resolution is the power-of-two bucket width: the value
    /// returned is the inclusive upper bound of the bucket holding the
    /// rank, clamped into `[min, max]` so `quantile(0.0)` and
    /// `quantile(1.0)` are exact. (The serve report's p50/p99 session
    /// latencies are computed from the raw samples instead; this is the
    /// coarse view available from a telemetry snapshot alone.)
    ///
    /// ```
    /// use milback_telemetry::{Histogram, HistogramSnapshot};
    /// let mut h = Histogram::new();
    /// for v in [1u64, 2, 3, 1000] {
    ///     h.record(v);
    /// }
    /// let mut s = HistogramSnapshot::empty();
    /// s.merge_from(&h);
    /// assert_eq!(s.quantile(0.0), Some(1));
    /// assert_eq!(s.quantile(1.0), Some(1000));
    /// assert!(s.quantile(0.5).unwrap() <= 3);
    /// ```
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(ub, c) in &self.buckets {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(ub.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds one shard's [`Histogram`] into this snapshot.
    pub fn merge_from(&mut self, h: &Histogram) {
        self.count = self.count.saturating_add(h.count);
        self.sum += h.sum;
        self.min = self.min.min(h.min);
        self.max = self.max.max(h.max);
        let mut dense = [0u64; N_BUCKETS];
        for &(ub, c) in &self.buckets {
            dense[crate::hist::bucket_index(ub)] = c;
        }
        for (i, &c) in h.buckets.iter().enumerate() {
            dense[i] = dense[i].saturating_add(c);
        }
        self.buckets = dense
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect();
    }
}

/// A consistent point-in-time aggregate of every metric.
///
/// ```
/// milback_telemetry::set_enabled(true);
/// milback_telemetry::reset();
/// milback_telemetry::counter_add("doc.snapshot.events", 1);
/// let snap = milback_telemetry::snapshot();
/// let json = snap.to_json(2);
/// assert!(json.contains("\"doc.snapshot.events\": 1"));
/// milback_telemetry::set_enabled(false);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters, summed across shards.
    pub counters: BTreeMap<String, u64>,
    /// Gauges, merged across shards by maximum.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, bucket-wise sums across shards.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The thread-count-invariant subset: drops all gauges, every
    /// histogram whose name ends in `.ns` (wall-clock durations) and
    /// every metric whose name ends in `.local` (per-thread cache
    /// state). For the remaining metrics, a parallel `milback::batch`
    /// run and a serial run of the same trials produce equal snapshots —
    /// the property the integration tests pin down.
    ///
    /// ```
    /// milback_telemetry::set_enabled(true);
    /// milback_telemetry::reset();
    /// milback_telemetry::counter_add("doc.det.frames", 1);
    /// milback_telemetry::counter_add("doc.det.cache_miss.local", 1);
    /// milback_telemetry::observe("doc.det.elapsed.ns", 1500);
    /// milback_telemetry::gauge_set("doc.det.threads", 8.0);
    /// let det = milback_telemetry::snapshot().deterministic_view();
    /// assert!(det.counters.contains_key("doc.det.frames"));
    /// assert!(!det.counters.contains_key("doc.det.cache_miss.local"));
    /// assert!(det.histograms.is_empty());
    /// assert!(det.gauges.is_empty());
    /// milback_telemetry::set_enabled(false);
    /// ```
    pub fn deterministic_view(&self) -> Snapshot {
        let keep = |name: &str| !name.ends_with(".ns") && !name.ends_with(".local");
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: BTreeMap::new(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Renders the snapshot as a JSON object indented by `indent`
    /// spaces per level. Histograms appear as
    /// `{"count", "sum", "min", "max", "mean", "buckets"}` with buckets
    /// keyed by their inclusive upper bound.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = |lvl: usize| " ".repeat(indent * lvl);
        let mut out = String::from("{\n");

        out.push_str(&format!("{}\"counters\": {{", pad(1)));
        push_map(&mut out, &self.counters, indent, 2, |v| v.to_string());
        out.push_str("},\n");

        out.push_str(&format!("{}\"gauges\": {{", pad(1)));
        push_map(&mut out, &self.gauges, indent, 2, json_f64);
        out.push_str("},\n");

        out.push_str(&format!("{}\"histograms\": {{", pad(1)));
        let entries: Vec<(String, String)> = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), hist_json(h, indent, 3)))
            .collect();
        push_map_raw(&mut out, &entries, indent, 2);
        out.push_str("}\n");

        out.push('}');
        out
    }
}

/// Minimal JSON string escaping (metric names are plain identifiers, but
/// correctness is cheap).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: &f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_map<V>(
    out: &mut String,
    map: &BTreeMap<String, V>,
    indent: usize,
    lvl: usize,
    render: impl Fn(&V) -> String,
) {
    let entries: Vec<(String, String)> = map.iter().map(|(k, v)| (k.clone(), render(v))).collect();
    push_map_raw(out, &entries, indent, lvl);
}

fn push_map_raw(out: &mut String, entries: &[(String, String)], indent: usize, lvl: usize) {
    let pad = " ".repeat(indent * lvl);
    let pad_close = " ".repeat(indent * (lvl - 1));
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!("\n{pad}\"{}\": {v}{comma}", escape(k)));
    }
    if entries.is_empty() {
        // `{}` stays on one line.
    } else {
        out.push('\n');
        out.push_str(&pad_close);
    }
}

fn hist_json(h: &HistogramSnapshot, indent: usize, lvl: usize) -> String {
    let pad = " ".repeat(indent * lvl);
    let pad_close = " ".repeat(indent * (lvl - 1));
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|(ub, c)| format!("\"{ub}\": {c}"))
        .collect();
    format!(
        "{{\n{pad}\"count\": {},\n{pad}\"sum\": {},\n{pad}\"min\": {},\n{pad}\"max\": {},\n{pad}\"mean\": {},\n{pad}\"buckets\": {{{}}}\n{pad_close}}}",
        h.count,
        h.sum,
        if h.count == 0 { 0 } else { h.min },
        h.max,
        h.mean().map(|m| json_f64(&m)).unwrap_or("null".into()),
        buckets.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hist(values: &[u64]) -> HistogramSnapshot {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        let mut s = HistogramSnapshot::empty();
        s.merge_from(&h);
        s
    }

    #[test]
    fn merge_from_accumulates() {
        let mut s = sample_hist(&[1, 2, 3]);
        let mut h2 = Histogram::new();
        h2.record(1000);
        s.merge_from(&h2);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.max, 1000);
        // bucket for 1000 is [512, 1023]
        assert!(s.buckets.contains(&(1023, 1)));
    }

    #[test]
    fn quantile_nearest_rank() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
        let s = sample_hist(&[1, 1, 1, 1]);
        assert_eq!(s.quantile(0.5), Some(1));
        assert_eq!(s.quantile(0.99), Some(1));
        // 100 small values and one huge one: p50 stays small (the upper
        // bound of the [8, 15] bucket holding the rank), p100 exact.
        let mut vals = vec![8u64; 100];
        vals.push(1 << 20);
        let s = sample_hist(&vals);
        assert_eq!(s.quantile(0.5), Some(15));
        assert_eq!(s.quantile(1.0), Some(1 << 20));
        // Monotone in q.
        let s = sample_hist(&[1, 10, 100, 1000, 10_000]);
        let mut last = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn json_shape() {
        let mut snap = Snapshot::default();
        snap.counters.insert("a.count".into(), 7);
        snap.gauges.insert("a.gauge".into(), 2.5);
        snap.histograms
            .insert("a.hist".into(), sample_hist(&[4, 5]));
        let json = snap.to_json(2);
        assert!(json.contains("\"a.count\": 7"), "{json}");
        assert!(json.contains("\"a.gauge\": 2.5"), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("\"sum\": 9"), "{json}");
        assert!(json.contains("\"buckets\": {\"7\": 2}"), "{json}");
        // Balanced braces — a cheap well-formedness check without a parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn empty_snapshot_renders() {
        let json = Snapshot::default().to_json(2);
        assert!(json.contains("\"counters\": {}"), "{json}");
        assert!(json.contains("\"histograms\": {}"), "{json}");
    }

    #[test]
    fn deterministic_view_filters_classes() {
        let mut snap = Snapshot::default();
        snap.counters.insert("keep.me".into(), 1);
        snap.counters.insert("drop.me.local".into(), 1);
        snap.gauges.insert("drop.gauge".into(), 1.0);
        snap.histograms
            .insert("keep.hist".into(), sample_hist(&[1]));
        snap.histograms
            .insert("drop.time.ns".into(), sample_hist(&[1]));
        let det = snap.deterministic_view();
        assert_eq!(det.counters.len(), 1);
        assert!(det.counters.contains_key("keep.me"));
        assert!(det.gauges.is_empty());
        assert_eq!(det.histograms.len(), 1);
        assert!(det.histograms.contains_key("keep.hist"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain.name"), "plain.name");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
