//! Lightweight timing spans.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop and records the elapsed nanoseconds into the histogram named at
//! creation. By convention span names end in `.ns` — the marker
//! [`Snapshot::deterministic_view`](crate::Snapshot::deterministic_view)
//! uses to exclude wall-clock metrics from parallel-vs-serial equality.
//!
//! When telemetry is [disabled](crate::enabled) a span holds no
//! timestamp and its drop is a no-op branch, so leaving spans in hot
//! code costs one atomic load per scope.

use std::time::Instant;

/// A drop-guard that records its own lifetime into a histogram.
///
/// ```
/// milback_telemetry::set_enabled(true);
/// milback_telemetry::reset();
/// {
///     let _span = milback_telemetry::span("doc.span.work.ns");
///     // ... the timed region ...
/// } // drop records the elapsed nanoseconds
/// let snap = milback_telemetry::snapshot();
/// assert_eq!(snap.histograms["doc.span.work.ns"].count, 1);
/// milback_telemetry::set_enabled(false);
/// ```
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Ends the span early, recording its duration now instead of at
    /// scope exit.
    pub fn end(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = start.elapsed().as_nanos();
            crate::observe(self.name, ns.min(u64::MAX as u128) as u64);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

/// Starts a [`Span`] that records into the histogram `name` when
/// dropped. Name the histogram with a `.ns` suffix.
#[inline]
pub fn span(name: &'static str) -> Span {
    let start = if crate::enabled() {
        Some(Instant::now())
    } else {
        None
    };
    Span { name, start }
}

/// Runs `f`, recording its wall-clock duration into the histogram
/// `name`.
///
/// ```
/// milback_telemetry::set_enabled(true);
/// milback_telemetry::reset();
/// let out = milback_telemetry::time("doc.time.calc.ns", || 6 * 7);
/// assert_eq!(out, 42);
/// assert_eq!(milback_telemetry::snapshot().histograms["doc.time.calc.ns"].count, 1);
/// milback_telemetry::set_enabled(false);
/// ```
#[inline]
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = span(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_once_on_drop() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _s = span("test.span.ns");
        }
        let h = &crate::snapshot().histograms["test.span.ns"];
        assert_eq!(h.count, 1);
        crate::set_enabled(false);
    }

    #[test]
    fn early_end_does_not_double_record() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        let s = span("test.span.early.ns");
        s.end();
        assert_eq!(crate::snapshot().histograms["test.span.early.ns"].count, 1);
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        crate::set_enabled(false);
        {
            let _s = span("test.span.off.ns");
        }
        time("test.span.off.ns", || ());
        assert!(!crate::snapshot()
            .histograms
            .contains_key("test.span.off.ns"));
    }
}
