//! # milback-telemetry
//!
//! Dependency-free observability for the MilBack reproduction: counters,
//! histograms, gauges and lightweight [`Span`]s, aggregated in a
//! thread-safe registry and exported as JSON snapshots. The hot pipeline
//! (`milback-dsp` FFT plans, `milback-ap` localization stages,
//! `milback-node` demodulation, `milback-proto` CRC/FEC/ARQ and the
//! `milback::batch` parallel engine) reports into this crate; the
//! `bench_engine` binary embeds the snapshot in its `BENCH_*.json`
//! output. See DESIGN.md §11 for the data model and overhead budget.
//!
//! ## Enabling
//!
//! Telemetry is **off by default**. It turns on when the
//! `MILBACK_TELEMETRY` environment variable is set to `1`, `true`, `on`
//! or `yes` (case-insensitive), or programmatically via [`set_enabled`].
//! When off, every recording call is a single relaxed atomic load and a
//! branch — no locks, no allocation, no time-stamping (the when-off
//! guarantee the batch engine relies on).
//!
//! ## Recording
//!
//! ```
//! milback_telemetry::set_enabled(true);
//! milback_telemetry::reset();
//!
//! // Counters accumulate monotonically (saturating at u64::MAX).
//! milback_telemetry::counter_add("doc.frames", 3);
//! // Histograms bucket u64 values by power of two.
//! milback_telemetry::observe("doc.bit_errors", 2);
//! // Gauges hold a float; shards merge by maximum.
//! milback_telemetry::gauge_set("doc.threads", 4.0);
//!
//! let snap = milback_telemetry::snapshot();
//! assert_eq!(snap.counters["doc.frames"], 3);
//! assert_eq!(snap.histograms["doc.bit_errors"].count, 1);
//! milback_telemetry::set_enabled(false);
//! ```
//!
//! ## Aggregation model
//!
//! Each thread records into its own *shard* (a thread-local handle onto a
//! mutex-protected map registered in a global list), so recording never
//! contends across worker threads. [`snapshot()`] drains by summing every
//! shard — counters and histogram buckets add, gauges take the maximum —
//! and because every merge operator is commutative and associative over
//! integers, **parallel and serial runs of the same work produce
//! identical totals** (the `milback::batch` determinism contract extends
//! to telemetry). Wall-clock metrics are the exception; see below.
//!
//! ## Naming convention
//!
//! Metric names are dot-separated, prefixed by the crate stage they
//! instrument (`dsp.`, `ap.`, `node.`, `proto.`, `core.`). Two suffixes
//! mark metrics that are *not* thread-count-invariant:
//!
//! * `.ns` — wall-clock durations recorded by [`Span`]s; their counts are
//!   invariant but their sums depend on scheduling,
//! * `.local` — per-thread cache state (e.g. FFT plan-cache misses: each
//!   worker thread builds its own plans, so more threads → more misses).
//!
//! [`Snapshot::deterministic_view`] strips both classes (and all gauges),
//! leaving exactly the metrics for which parallel == serial equality
//! holds; the integration tests assert on that view.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod hist;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use hist::{bucket_index, bucket_upper_bound, Histogram};
pub use registry::{counter_add, gauge_set, observe, reset, snapshot};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use span::{span, time, Span};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialized, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is currently recording.
///
/// The first call reads the `MILBACK_TELEMETRY` environment variable;
/// later calls are a single relaxed atomic load. [`set_enabled`]
/// overrides the environment either way.
///
/// ```
/// // Off unless MILBACK_TELEMETRY is set in the environment.
/// milback_telemetry::set_enabled(false);
/// assert!(!milback_telemetry::enabled());
/// ```
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => init_from_env(),
        1 => false,
        _ => true,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("MILBACK_TELEMETRY")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "true" || v == "on" || v == "yes"
        })
        .unwrap_or(false);
    // Racing initializers agree: the env var does not change underneath.
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces telemetry on or off, overriding `MILBACK_TELEMETRY`. Used by
/// benches and tests; takes effect immediately on all threads.
///
/// ```
/// milback_telemetry::set_enabled(true);
/// assert!(milback_telemetry::enabled());
/// milback_telemetry::set_enabled(false);
/// assert!(!milback_telemetry::enabled());
/// ```
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Serializes unit tests that reset or assert on the process-global
/// registry (doctests run in their own processes and don't need this).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}
