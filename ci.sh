#!/usr/bin/env bash
# CI gate: build, test, lint, format-check the whole workspace.
#
# Designed to work on an offline machine: all third-party crates are
# vendored as path dependencies (vendor/), so no registry access is
# needed. --offline makes cargo fail fast instead of hanging if
# something does try to reach a registry. clippy/rustfmt steps are
# skipped (with a warning) when the components are not installed.
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=(--offline --workspace)

echo "==> cargo build --release"
cargo build --release "${CARGO_FLAGS[@]}"

echo "==> cargo test"
cargo test -q --release "${CARGO_FLAGS[@]}"

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy"
    # The allow-by-default lints guard the zero-allocation hot paths
    # (DESIGN.md §12–13): a redundant clone or a collect-then-iterate
    # chain is usually a hidden heap allocation, and index-based loops /
    # manual copy loops hide the slice patterns the cached channel
    # kernels rely on.
    # needless_pass_by_value keeps the batched/pooled APIs honest: a
    # by-value Vec or Signal argument on a hot path forces the caller to
    # clone out of its pool.
    cargo clippy --release "${CARGO_FLAGS[@]}" --all-targets -- -D warnings \
        -W clippy::redundant_clone -W clippy::needless_collect \
        -W clippy::needless_range_loop -W clippy::manual_memcpy \
        -W clippy::needless_pass_by_value
    # Library paths of the protocol/session layers — and the node/RF
    # substrate they call into — must not unwrap: every fallible outcome
    # is a typed error or a Degradation report (DESIGN.md §14). --lib
    # skips #[cfg(test)] modules; --no-deps keeps the lint off the
    # vendored stubs.
    cargo clippy --release --offline --lib --no-deps \
        -p milback -p milback-proto -p milback-node -p milback-rf \
        -- -D warnings -W clippy::unwrap_used
else
    echo "==> clippy not installed; skipping lint" >&2
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    # Vendored stubs keep upstream-ish layout and are exempt from house style.
    cargo fmt --check -p milback -p milback-dsp -p milback-rf -p milback-hw \
        -p milback-proto -p milback-node -p milback-ap -p milback-baseline \
        -p milback-bench -p milback-repro -p milback-telemetry
else
    echo "==> rustfmt not installed; skipping format check" >&2
fi

echo "==> bench smoke (kernel/burst/channel bitwise asserts)"
# --smoke shrinks every rep count; the run still asserts that each fast
# path (in-place FFT, workspace pipeline, waveform templates, and the
# cached channel-synthesis render of DESIGN.md §13) is bitwise identical
# to its allocating/uncached twin before reporting timings.
cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --smoke --out target/bench_smoke.json >/dev/null

echo "==> kernel perf gate (burst + range FFT vs committed baseline)"
# Re-times just the localization burst and the range-FFT kernel at full
# reps (matching how the baseline was recorded; ~4 s) and fails if
# either regressed more than 10% against the committed BENCH_6.json.
# Comparisons are calibration-normalized (DESIGN.md §17.4) so shared-
# host load cannot trip the gate, with bounded re-measures on a miss.
cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --kernels-only --check-against BENCH_6.json

echo "==> chaos smoke (fault-injection determinism)"
# The chaos leg (DESIGN.md §14) runs supervised sessions under sampled
# fault plans serially and in parallel, asserting identical outcomes and
# byte-identical telemetry deterministic views inside one process. Two
# back-to-back runs then pin cross-process determinism: same seeds, same
# faults, same recoveries — the view files must compare equal with cmp.
MILBACK_TELEMETRY=1 cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --smoke --chaos-only --chaos-view target/chaos_view_1.json >/dev/null
MILBACK_TELEMETRY=1 cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --smoke --chaos-only --chaos-view target/chaos_view_2.json >/dev/null
cmp target/chaos_view_1.json target/chaos_view_2.json

echo "==> serve smoke (serving-pool soak determinism)"
# The serving soak (DESIGN.md §15) pushes a seeded Poisson schedule past
# the virtual server's capacity through the work-stealing session pool,
# serially and in parallel, asserting identical resolutions and
# byte-identical deterministic telemetry views inside one process. The
# two runs below additionally pin cross-process AND cross-thread-count
# determinism: one capped at a single worker, one at four — the
# deterministic-view files must still compare equal with cmp.
MILBACK_TELEMETRY=1 MILBACK_THREADS=1 cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --smoke --serve --serve-only --serve-view target/serve_view_1.json >/dev/null
MILBACK_TELEMETRY=1 MILBACK_THREADS=4 cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --smoke --serve --serve-only --serve-view target/serve_view_2.json >/dev/null
cmp target/serve_view_1.json target/serve_view_2.json

echo "==> net smoke (dense-network fabric determinism)"
# The net leg (DESIGN.md §16) sweeps the dense-network fabric across
# node densities — two APs, slotted polling rounds with drift, handoffs
# and parked-neighbor interference — serially and in parallel, asserting
# per-density digest equality and byte-identical deterministic telemetry
# views inside one process. The two runs below pin cross-process AND
# cross-thread-count determinism: the deterministic per-density tables
# (and views) must compare equal with cmp at 1 and at 4 workers.
MILBACK_TELEMETRY=1 MILBACK_THREADS=1 cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --smoke --net --net-only --net-view target/net_view_1.json >/dev/null
MILBACK_TELEMETRY=1 MILBACK_THREADS=4 cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --smoke --net --net-only --net-view target/net_view_2.json >/dev/null
cmp target/net_view_1.json target/net_view_2.json

echo "==> adaptive smoke (closed-loop controller determinism)"
# The adaptive leg (DESIGN.md §18) runs the adaptive-vs-fixed scenario
# sweep — every §14 stressor fixed and closed-loop on paired seeds —
# through the batch engine; inside one process it already asserts the
# 1-thread and N-thread sweeps bitwise equal. The two runs below pin
# cross-process AND cross-thread-count determinism: the deterministic
# per-scenario tables must compare equal with cmp at 1 and at 4 workers.
MILBACK_TELEMETRY=1 MILBACK_THREADS=1 cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --smoke --adaptive-only --adaptive-view target/adaptive_view_1.txt >/dev/null
MILBACK_TELEMETRY=1 MILBACK_THREADS=4 cargo run --release --offline -p milback-bench --bin bench_engine -- \
    --smoke --adaptive-only --adaptive-view target/adaptive_view_2.txt >/dev/null
cmp target/adaptive_view_1.txt target/adaptive_view_2.txt

echo "==> docs freshness (ARCHITECTURE/README section refs resolve in DESIGN.md)"
# Every "DESIGN.md §N" reference in the top-level maps must point at a
# real "## N." heading in DESIGN.md — a renumbered or deleted design
# section must not leave dangling pointers in the architecture docs.
for n in $(grep -ho 'DESIGN\.md §[0-9]\+' ARCHITECTURE.md README.md | grep -o '[0-9]\+$' | sort -un); do
    grep -q "^## $n\." DESIGN.md || {
        echo "ARCHITECTURE.md/README.md reference DESIGN.md §$n but DESIGN.md has no '## $n.' heading" >&2
        exit 1
    }
done

echo "==> cargo doc (rustdoc warnings are errors)"
# Same package list as fmt: vendored stubs are exempt from the docs gate.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -q \
    -p milback -p milback-dsp -p milback-rf -p milback-hw \
    -p milback-proto -p milback-node -p milback-ap -p milback-baseline \
    -p milback-bench -p milback-repro -p milback-telemetry

echo "==> CI green"
