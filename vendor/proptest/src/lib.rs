//! Offline vendored subset of the `proptest` API.
//!
//! The MilBack build container has no crate-registry access, so this crate
//! provides the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, [`any`], [`collection::vec`], [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline test substrate:
//! cases are generated from a fixed per-test seed (derived from the test
//! name), so runs are fully deterministic, and there is no shrinking — a
//! failing case panics with the ordinary assert message.

use std::ops::Range;

/// Deterministic generator for test-case inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for a named test: every test gets its own fixed
    /// stream so adding a test never perturbs its neighbours.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Test-runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() >> 63 != 0 {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `elem` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of `elem` values with `len` in `size` (half-open).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { elem, len: size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
    /// Upstream-compatible alias: `proptest::prelude::proptest!`.
    pub use crate::proptest as proptest_macro;
}

/// Asserts a property holds for a generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two expressions are equal for a generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts two expressions differ for a generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..1000 {
            let x = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&x));
            let k = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::for_test("vec_strategy_lengths");
        let s = crate::collection::vec(0.0f64..1.0, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_test("prop_map_applies");
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(TestRng::for_test("same").next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself wires patterns, strategies and config.
        #[test]
        fn macro_generates_cases(x in 0u64..100, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
        }
    }
}
