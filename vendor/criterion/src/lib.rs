//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The MilBack build container has no crate-registry access, so this crate
//! implements the surface `benches/figures.rs` uses: [`Criterion`],
//! [`BenchmarkGroup`], `Bencher::iter`, [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a plain
//! warmup-then-measure loop printing mean wall time per iteration — no
//! statistics engine, no HTML reports.

use std::time::{Duration, Instant};

/// Re-export for benchmarks that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark body repeatedly and measures it.
pub struct Bencher {
    /// Target measurement time per benchmark.
    measure_for: Duration,
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
    /// Iterations executed during measurement.
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock seconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call (fills caches, triggers lazy init).
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure_for || iters == 0 {
            black_box(f());
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean_secs = start.elapsed().as_secs_f64() / iters as f64;
        self.iters = iters;
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // `sample_size` scales the measurement window: heavier benches ask for
    // fewer samples upstream, so spend less wall time on them here too.
    let measure_for = Duration::from_millis((20 * sample_size.clamp(1, 100)) as u64);
    let mut b = Bencher {
        measure_for,
        mean_secs: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "bench {name:<40} {:>12}/iter ({} iters)",
        human_time(b.mean_secs),
        b.iters
    );
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales the measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(3) * 2));
        g.finish();
    }
}
