//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The MilBack build container has no crate-registry access, so this crate
//! re-implements exactly the surface the workspace uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — not bit-compatible with upstream `StdRng` (ChaCha12), but
//! every consumer in this workspace only relies on *determinism for a given
//! seed*, never on specific upstream streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of a `u64`
    /// draw, which is the better-mixed half for weak generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the canonical seeding path throughout this workspace.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seeding helper (and a fine standalone mixer).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The marker distribution behind [`Rng::gen`]: uniform over the type's
/// natural domain (`[0, 1)` for floats, all values for integers).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// A distribution that can sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let u: f32 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free mapping; the bias is
                // < 2⁻⁶⁴ and irrelevant for simulation workloads.
                let x = rng.next_u64() as u128;
                self.start.wrapping_add(((x * span) >> 64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level generation methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, passes BigCrush, and `Clone`/`Debug` like upstream's
    /// `StdRng`. Streams are NOT bit-compatible with upstream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is the one forbidden xoshiro state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x));
            let k = rng.gen_range(5usize..17);
            assert!((5..17).contains(&k));
            let j = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&j));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(10);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
