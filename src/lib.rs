//! # milback-repro
//!
//! Workspace facade for the MilBack reproduction: re-exports the
//! individual crates so the top-level `examples/` and `tests/` can reach
//! everything through one dependency.
//!
//! The crates, bottom-up:
//!
//! * [`milback_dsp`] — FFTs, chirps, filters, noise, statistics,
//! * [`milback_rf`] — antennas, the dual-port FSA, propagation, the scene,
//! * [`milback_hw`] — switches, envelope detectors, ADC, power model,
//! * [`milback_proto`] — OAQFM symbols, CRC framing, packet structure,
//! * [`milback_node`] — the backscatter node,
//! * [`milback_ap`] — the access point,
//! * [`milback_baseline`] — mmTag/Millimetro/OmniScatter comparators,
//! * [`milback_telemetry`] — counters/histograms/spans over the whole
//!   pipeline (`MILBACK_TELEMETRY=1` to enable),
//! * [`milback`] — the end-to-end `Network` simulator and experiment
//!   drivers.

#![deny(rustdoc::broken_intra_doc_links)]

pub use milback;
pub use milback_ap;
pub use milback_baseline;
pub use milback_dsp;
pub use milback_hw;
pub use milback_node;
pub use milback_proto;
pub use milback_rf;
pub use milback_telemetry;
