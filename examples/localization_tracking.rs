//! Tracking scenario: a node (say, a VR headset tag — the application the
//! paper's introduction motivates) moves through the room while the AP
//! re-localizes it packet by packet.
//!
//! ```sh
//! cargo run --release --example localization_tracking
//! ```

use milback::tracking::NodeTracker;
use milback::{Fidelity, Network};
use milback_dsp::stats;
use milback_rf::geometry::{deg_to_rad, Point, Pose};

fn main() {
    println!("MilBack tracking demo — node walking an L-shaped path");
    println!(
        "{:>5} {:>8} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "step", "true_x", "true_y", "est_x", "est_y", "raw_cm", "kalman_cm"
    );

    // An L-shaped walk: 2 m → 5 m along x, then sideways in y.
    let mut waypoints = Vec::new();
    for k in 0..=10 {
        waypoints.push(Point::new(2.0 + 0.3 * k as f64, 0.2));
    }
    for k in 1..=6 {
        waypoints.push(Point::new(5.0, 0.2 + 0.25 * k as f64));
    }

    let mut errors_cm = Vec::new();
    let mut kalman_cm = Vec::new();
    let mut tracker = NodeTracker::milback();
    let dt = 0.1; // one packet every 100 ms
    for (step, p) in waypoints.iter().enumerate() {
        // The tag keeps facing roughly back at the AP as it moves.
        let bearing = p.bearing_to(&Point::origin());
        let pose = Pose::new(*p, bearing + deg_to_rad(3.0));
        let mut net = Network::new(pose, Fidelity::Fast, 9000 + step as u64);

        match net.localize() {
            Some(fix) => {
                let smoothed = tracker.update(&fix, dt);
                if let (Some(angle), Some(track)) = (fix.angle, smoothed) {
                    let est = Point::from_polar(fix.range, angle);
                    let raw_err = est.distance_to(p) * 100.0;
                    let flt_err = track.position.distance_to(p) * 100.0;
                    errors_cm.push(raw_err);
                    kalman_cm.push(flt_err);
                    println!(
                        "{:>5} {:>8.2} {:>8.2} {:>9.2} {:>9.2} {:>10.1} {:>10.1}",
                        step, p.x, p.y, est.x, est.y, raw_err, flt_err
                    );
                } else {
                    println!("{step:>5} {:>8.2} {:>8.2}  angle out of range", p.x, p.y);
                }
            }
            None => println!("{step:>5} {:>8.2} {:>8.2}  not detected", p.x, p.y),
        }
    }

    println!();
    println!(
        "track summary: {} fixes | raw mean {:.1} cm p90 {:.1} cm | kalman mean {:.1} cm p90 {:.1} cm",
        errors_cm.len(),
        stats::mean(&errors_cm),
        stats::percentile(&errors_cm, 90.0),
        stats::mean(&kalman_cm),
        stats::percentile(&kalman_cm, 90.0)
    );
    println!(
        "(ranging error alone is cm-scale; the position error is dominated by\n\
         the angle estimate — {:.1} cm arc per degree at 5 m)",
        5.0 * deg_to_rad(1.0) * 100.0
    );
}
