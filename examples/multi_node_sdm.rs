//! Multi-node operation by space-division multiplexing (paper §7 last
//! paragraph): the AP steers its beams toward each node in turn and runs
//! the full per-node procedure. Nodes outside the steered beam contribute
//! only side-lobe energy, so the links stay isolated.
//!
//! At deployment scale the same idea becomes the dense-network fabric
//! (`milback::net`, DESIGN.md §16): several APs, slotted polling rounds
//! per coverage cell, parked-neighbor interference and deterministic
//! handoffs. The last part of this example runs a small fabric round.
//!
//! ```sh
//! cargo run --release --example multi_node_sdm
//! ```

use milback::multinode::MultiNetwork;
use milback::net::{ap_line, net_roster, Fabric, NetConfig};
use milback::{Fidelity, Network};
use milback_proto::mac::PollSchedule;
use milback_rf::geometry::{deg_to_rad, Pose};

fn main() {
    // Three nodes spread across the AP's field of view — ALL physically
    // present in the channel at once; the AP steers per slot (SDM).
    let names = ["headset  ", "wristband", "anchor   "];
    let poses = vec![
        Pose::facing_ap(2.5, deg_to_rad(-25.0), deg_to_rad(10.0)),
        Pose::facing_ap(4.0, deg_to_rad(0.0), deg_to_rad(-8.0)),
        Pose::facing_ap(6.0, deg_to_rad(30.0), deg_to_rad(15.0)),
    ];
    let truths = [2.5, 4.0, 6.0];

    println!(
        "MilBack SDM demo: one AP polling {} co-present nodes",
        poses.len()
    );
    let mut net = MultiNetwork::new(poses, Fidelity::Fast, 4000);
    let schedule = PollSchedule::round_robin_uplink(3);
    let payloads: Vec<Vec<u8>> = names
        .iter()
        .map(|n| format!("{}:report", n.trim()).into_bytes())
        .collect();
    let results = net.run_round(&schedule, &payloads, 5e6);

    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>9}",
        "node", "true_m", "est_m", "UL SNR", "UL ok"
    );
    for r in &results {
        let est = r
            .fix
            .map(|f| format!("{:.2}", f.range))
            .unwrap_or_else(|| "miss".into());
        let (snr, ok) = match &r.uplink {
            Some(u) => (
                format!("{:.1} dB", 10.0 * u.snr.log10()),
                if u.payload.is_ok() { "yes" } else { "crc!" },
            ),
            None => ("-".to_string(), "no"),
        };
        println!(
            "{:<10} {:>9.2} {:>10} {:>10} {:>9}",
            names[r.node], truths[r.node], est, snr, ok
        );
    }
    // Per-node throughput under this schedule.
    let pkt = net.fidelity.packet();
    println!(
        "per-node uplink throughput in this round-robin: {:.2} Mbps",
        schedule.per_node_uplink_throughput(0, &pkt, 1e-3) / 1e6
    );

    println!();
    println!("Isolation check: with the beam steered at the wristband (0°),");
    println!("how much weaker is the headset's (−25°) backscatter?");
    let wrist = Pose::facing_ap(4.0, 0.0, deg_to_rad(-8.0));
    let head = Pose::facing_ap(2.5, deg_to_rad(-25.0), deg_to_rad(10.0));
    let net = Network::new(wrist, Fidelity::Fast, 5000);
    // Per-tone backscatter gains with the AP steered at the wristband.
    let fsa = net.node.fsa;
    let wrist_inc = wrist.incidence_from(&net.scene.tx_pos);
    let f = fsa
        .frequency_for_angle(milback_rf::fsa::Port::A, wrist_inc)
        .unwrap();
    let g_wrist = net
        .scene
        .tone_backscatter_gain(&wrist, &fsa, milback_rf::fsa::Port::A, f, 0);
    let g_head = net
        .scene
        .tone_backscatter_gain(&head, &fsa, milback_rf::fsa::Port::A, f, 0);
    println!(
        "wristband path {:.1} dB, headset path {:.1} dB → {:.1} dB of spatial isolation",
        10.0 * g_wrist.log10(),
        10.0 * g_head.log10(),
        10.0 * (g_wrist / g_head).log10()
    );

    // Scaling up: the dense-network fabric (milback::net) runs the same
    // polling discipline across coverage cells — here two APs 4 m apart
    // serving a dozen nodes for one slotted round, with parked-neighbor
    // interference and strongest-response cell assignment.
    println!();
    println!("Dense-network fabric: 2 APs, 12 nodes, one slotted round");
    let aps = ap_line(2, 4.0);
    let roster = net_roster(12, &aps, 0x5D17);
    let mut fabric = Fabric::new(&aps, &roster, NetConfig::milback(Fidelity::Fast));
    fabric.reseed(0x5D17);
    let round = fabric.run_round(1);
    let cell0 = fabric.assignment().iter().filter(|&&c| c == 0).count();
    println!(
        "cells: {} nodes on AP0, {} on AP1; round span {:.1} ms",
        cell0,
        fabric.nodes() - cell0,
        round.round_airtime_s * 1e3
    );
    println!(
        "round: {}/{} delivered ({} fixes), {} overruns, {:.0} bit/s aggregate goodput",
        round.delivered, round.sessions, round.fixes, round.overruns, round.goodput_bps
    );
}
