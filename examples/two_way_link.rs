//! Two-way exchange: an AR-style control loop where the AP pushes a
//! configuration downlink and the node answers with sensor reports uplink
//! — the use case (both directions on one low-power tag) that no prior
//! mmWave backscatter system supports (paper Table 1).
//!
//! ```sh
//! cargo run --release --example two_way_link
//! ```

use milback::{Fidelity, Network};
use milback_proto::packet::Packet;
use milback_rf::geometry::{deg_to_rad, Pose};

fn checksum_ok<T>(r: &Result<Vec<u8>, T>) -> &'static str {
    if r.is_ok() {
        "CRC ok"
    } else {
        "CRC FAIL"
    }
}

fn main() {
    let pose = Pose::facing_ap(4.0, deg_to_rad(-5.0), deg_to_rad(14.0));
    let mut net = Network::new(pose, Fidelity::Fast, 77);

    println!("MilBack two-way link demo (node at 4 m)");
    println!("========================================");

    // Round 1: AP → node configuration.
    let config = b"cfg:rate=10Mbps;led=on;interval=50ms".to_vec();
    let outcome = net.run_packet(&Packet::downlink(config.clone()), 1e6);
    let dl = outcome.downlink.expect("downlink did not run");
    println!(
        "[AP → node] {} bytes, SINR {:.1} dB, {} — node heard mode {:?}",
        config.len(),
        10.0 * dl.sinr.log10(),
        checksum_ok(&dl.payload),
        outcome.mode_detected
    );
    if let Ok(p) = &dl.payload {
        println!("            node decoded: {:?}", String::from_utf8_lossy(p));
    }

    // Rounds 2-4: node → AP sensor reports at 10 Mbps (5 Msym/s).
    for round in 0..3 {
        let report = format!("report#{round}:imu=ok;temp={}C", 21 + round).into_bytes();
        let outcome = net.run_packet(&Packet::uplink(report.clone()), 5e6);
        let Some(ul) = outcome.uplink else {
            // Mode signalling or orientation sensing missed this packet —
            // a real deployment would simply retransmit.
            println!(
                "[node → AP] packet missed (mode {:?}) — retrying next round",
                outcome.mode_detected
            );
            continue;
        };
        println!(
            "[node → AP] {} bytes, SNR {:.1} dB, {} bit errors, {}",
            report.len(),
            10.0 * ul.snr.log10(),
            ul.bit_errors,
            checksum_ok(&ul.payload)
        );
        if let Ok(p) = &ul.payload {
            println!("            AP decoded:  {:?}", String::from_utf8_lossy(p));
        }
        // Each packet re-localizes the node for free (Field 2).
        if let Some(fix) = outcome.fix {
            println!(
                "            side-effect localization: {:.2} m (truth {:.2} m)",
                fix.range,
                net.true_range()
            );
        }
    }

    // Energy receipt for the session.
    use milback_hw::power::NodeMode;
    let p = &net.node.power;
    let dl_energy = p.energy_per_bit_nj(NodeMode::Downlink, 2e6);
    let ul_energy = p.energy_per_bit_nj(NodeMode::Uplink { bit_rate: 10e6 }, 10e6);
    println!();
    println!(
        "node energy: {dl_energy:.1} nJ/bit downlink at this rate, {ul_energy:.1} nJ/bit uplink"
    );
}
