//! Quickstart: stand up a MilBack network, localize the node, sense its
//! orientation from both ends, and exchange a packet in each direction.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use milback::{Fidelity, Network};
use milback_proto::packet::Packet;
use milback_rf::geometry::{deg_to_rad, rad_to_deg, Pose};

fn main() {
    // A node 3 m from the AP, 8° off the AP's boresight, rotated 12° away
    // from facing the AP, in the paper's cluttered indoor scene.
    let pose = Pose::facing_ap(3.0, deg_to_rad(8.0), deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, 42);

    println!("MilBack quickstart");
    println!("------------------");
    println!(
        "ground truth: range {:.2} m, azimuth {:.1}°, orientation {:.1}°",
        net.true_range(),
        rad_to_deg(net.true_angle()),
        rad_to_deg(net.true_orientation())
    );

    // 1. Localization (paper §5.1): FMCW + background subtraction.
    match net.localize() {
        Some(fix) => println!(
            "localization: range {:.3} m, azimuth {}",
            fix.range,
            fix.angle
                .map(|a| format!("{:.2}°", rad_to_deg(a)))
                .unwrap_or_else(|| "n/a".into())
        ),
        None => println!("localization: node not detected"),
    }

    // 2. Orientation sensing, both ends (paper §5.2).
    if let Some(o) = net.sense_orientation_at_ap() {
        println!("AP-side orientation estimate:   {:.2}°", rad_to_deg(o));
    }
    if let Some(o) = net.sense_orientation_at_node() {
        println!("node-side orientation estimate: {:.2}°", rad_to_deg(o));
    }

    // 3. A full downlink packet: Field 1 signals the mode, Field 2
    //    localizes, then the payload rides on orientation-selected tones.
    let downlink = Packet::downlink(b"hello node, please report".to_vec());
    let outcome = net.run_packet(&downlink, 1e6);
    let dl = outcome.downlink.expect("downlink did not run");
    println!(
        "downlink: tones {:?}, SINR {:.1} dB, {} bit errors, payload {:?}",
        dl.tones,
        10.0 * dl.sinr.log10(),
        dl.bit_errors,
        dl.payload
            .as_ref()
            .map(|p| String::from_utf8_lossy(p).into_owned())
    );

    // 4. A full uplink packet: the node backscatters its data on the
    //    two-tone query.
    let uplink = Packet::uplink(b"temp=23C batt=97% status=ok".to_vec());
    let outcome = net.run_packet(&uplink, 5e6);
    let ul = outcome.uplink.expect("uplink did not run");
    println!(
        "uplink:   tones {:?}, SNR {:.1} dB, {} bit errors, payload {:?}",
        ul.tones,
        10.0 * ul.snr.log10(),
        ul.bit_errors,
        ul.payload
            .as_ref()
            .map(|p| String::from_utf8_lossy(p).into_owned())
    );

    // 5. What it costs the node (paper §9.6).
    use milback_hw::power::NodeMode;
    let p = &net.node.power;
    println!(
        "node power: {:.0} mW localization/downlink, {:.0} mW uplink @40 Mbps",
        p.power_mw(NodeMode::Downlink),
        p.power_mw(NodeMode::Uplink { bit_rate: 40e6 })
    );
}
