//! Energy budgeting for battery-powered MilBack nodes: how long common
//! IoT duty cycles last on a coin cell, and how MilBack compares with an
//! active mmWave radio and with mmTag (paper §9.6).
//!
//! ```sh
//! cargo run --release --example energy_budget
//! ```

use milback_baseline::{BackscatterSystem, MilBackSystem, MmTag};
use milback_hw::power::{NodeMode, PowerModel};

/// CR2032 coin cell: ~225 mAh at 3 V ≈ 2430 J.
const COIN_CELL_J: f64 = 2430.0;

fn main() {
    let model = PowerModel::milback();

    println!("MilBack node energy budget (CR2032 coin cell, {COIN_CELL_J:.0} J)");
    println!("================================================================");

    // Scenario A: periodic sensor reporting.
    // Wake every second, receive a 32-byte command, send a 256-byte report.
    let dl_rate = 2e6; // 1 Msym/s OAQFM
    let ul_rate = 10e6;
    let dl_bits = (32.0 + 2.0) * 8.0;
    let ul_bits = (256.0 + 2.0) * 8.0;
    let t_dl = dl_bits / dl_rate;
    let t_ul = ul_bits / ul_rate;
    let e_dl = model.power_mw(NodeMode::Downlink) * 1e-3 * t_dl;
    let e_ul = model.power_mw(NodeMode::Uplink { bit_rate: ul_rate }) * 1e-3 * t_ul;
    // Localization preamble: 3 triangular + 5 sawtooth chirps ≈ 225 µs.
    let e_loc = model.power_mw(NodeMode::Localization) * 1e-3 * 225e-6;
    let e_cycle = e_dl + e_ul + e_loc;
    let years = COIN_CELL_J / e_cycle / (3600.0 * 24.0 * 365.0);
    println!("scenario A — 1 report/s (32 B down, 256 B up, localized every packet):");
    println!(
        "  energy per cycle: {:.2} µJ  (dl {:.2} + ul {:.2} + loc {:.2})",
        e_cycle * 1e6,
        e_dl * 1e6,
        e_ul * 1e6,
        e_loc * 1e6
    );
    println!(
        "  coin-cell life:   {years:.0} years of radio activity (battery shelf-life limited!)"
    );
    println!();

    // Scenario B: continuous AR stream — 40 Mbps uplink, always on.
    let p_stream = model.power_mw(NodeMode::Uplink { bit_rate: 40e6 }) * 1e-3;
    let hours = COIN_CELL_J / p_stream / 3600.0;
    println!("scenario B — continuous 40 Mbps uplink stream:");
    println!(
        "  node power: {:.0} mW → {hours:.0} h on a coin cell",
        p_stream * 1e3
    );
    println!();

    // Comparison per §9.6.
    println!("energy-per-bit comparison:");
    let milback = MilBackSystem;
    let mmtag = MmTag::default();
    println!(
        "  MilBack uplink   : {:.2} nJ/bit",
        milback.uplink_energy_nj_per_bit().unwrap()
    );
    println!(
        "  MilBack downlink : {:.2} nJ/bit",
        milback.downlink_energy_nj_per_bit().unwrap()
    );
    println!(
        "  mmTag uplink     : {:.2} nJ/bit (no downlink at all)",
        mmtag.uplink_energy_nj_per_bit().unwrap()
    );
    // An active 28 GHz radio (phased array + mixers) draws watts; even an
    // optimistic 500 mW at 100 Mbps is 5 nJ/bit — and cannot run from a
    // coin cell's ~10 mA pulse limit at all.
    println!("  active mmWave    : ~5 nJ/bit at best, and exceeds coin-cell pulse current");
}
