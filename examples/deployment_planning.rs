//! Deployment planning: before installing a MilBack AP in a room, answer
//! the questions an integrator actually asks — where does each rate work,
//! how long do battery nodes last, and where can nodes run battery-free
//! off the AP's own carrier?
//!
//! ```sh
//! cargo run --release --example deployment_planning
//! ```

use milback::survey::{analytic_uplink_snr, coverage_map};
use milback::ApParams;
use milback_hw::battery::{battery_life_years, Battery, DutyCycle};
use milback_hw::harvest::{harvest_budget, Rectifier};
use milback_hw::power::PowerModel;
use milback_node::node::BackscatterNode;
use milback_rf::channel::Scene;
use milback_rf::fsa::Port;
use milback_rf::geometry::Pose;

fn main() {
    let scene = Scene::milback_indoor();
    let node = BackscatterNode::milback(Pose::facing_ap(2.0, 0.0, 0.0));
    let ap = ApParams::milback();

    println!("MilBack deployment planner — 10 m × 6 m office bay");
    println!("===================================================");

    // 1. Rate coverage.
    let cells = coverage_map(&scene, &node, &ap, 10.0, 6.0, 1.0);
    let count = |pred: &dyn Fn(f64) -> bool| {
        cells
            .iter()
            .filter(|c| c.best_rate.map(pred).unwrap_or(false))
            .count()
    };
    let total = cells.len();
    println!("rate coverage ({total} cells):");
    println!("  ≥40 Mbps : {:3} cells", count(&|r| r >= 40e6));
    println!("  ≥10 Mbps : {:3} cells", count(&|r| r >= 10e6));
    println!("  any rate : {:3} cells", count(&|_| true));
    println!();

    // 2. Battery life at representative positions.
    println!("battery life (CR2032, 1 Hz telemetry duty cycle):");
    let model = PowerModel::milback();
    let duty = DutyCycle::telemetry_1hz();
    for d in [2.0, 5.0, 8.0] {
        let pose = Pose::facing_ap(d, 0.0, 0.0);
        let snr = analytic_uplink_snr(&scene, &node, &ap, &pose, 10e6)
            .map(|s| 10.0 * s.log10())
            .unwrap_or(f64::NEG_INFINITY);
        let life = battery_life_years(&Battery::cr2032(), &duty, &model);
        println!(
            "  node @{d} m: uplink SNR {snr:5.1} dB, battery life {}",
            life.map(|y| format!("{y:.0} years (self-discharge limited)"))
                .unwrap_or_else(|| "infeasible (peak current)".into())
        );
    }
    println!();

    // 3. Battery-free feasibility: harvested RF vs duty-cycled draw.
    println!("battery-free feasibility (mmWave rectenna, duty-cycled draw):");
    let rect = Rectifier::mmwave();
    let avg_draw = duty.average_power(&model);
    for d in [1.0, 2.0, 3.0, 4.0, 6.0] {
        let pose = Pose::facing_ap(d, 0.0, 0.0);
        let mut s = scene.clone();
        s.steer_towards(&pose.position);
        // RF power available at the node's harvesting port.
        let f = node.fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let g = s.tone_gain_to_port(&pose, &node.fsa, Port::A, f);
        let p_in = milback_dsp::noise::dbm_to_watts(ap.tx.power_dbm) * g;
        let budget = harvest_budget(&rect, p_in, avg_draw);
        println!(
            "  node @{d} m: RF in {:6.1} µW → harvested {:6.1} µW vs draw {:4.1} µW → {}",
            p_in * 1e6,
            budget.harvested_w * 1e6,
            avg_draw * 1e6,
            if budget.self_sustaining() {
                "BATTERY-FREE OK"
            } else {
                "needs a battery"
            }
        );
    }
}
